#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "harness/aggregate.h"
#include "harness/flags.h"
#include "harness/runner.h"
#include "harness/table.h"

namespace longdp {
namespace harness {
namespace {

TEST(AggregateTest, SummaryStats) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  auto s = Summarize(v);
  EXPECT_EQ(s.count, 100);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.median, 50.5);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_NEAR(s.q025, 3.475, 1e-9);   // R type-7
  EXPECT_NEAR(s.q975, 97.525, 1e-9);
}

TEST(AggregateTest, EmptySummary) {
  auto s = Summarize({});
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(AggregateTest, AbsErrorSummary) {
  auto s = SummarizeAbsError({1.0, 3.0}, 2.0);
  EXPECT_DOUBLE_EQ(s.mean, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1.0);
}

TEST(TableTest, AlignmentAndArity) {
  Table t({"a", "long-header", "c"});
  ASSERT_TRUE(t.AddRow({"1", "2", "3"}).ok());
  EXPECT_TRUE(t.AddRow({"1", "2"}).IsInvalidArgument());
  std::ostringstream out;
  t.Print(out);
  std::string s = out.str();
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, Formatting) {
  EXPECT_EQ(Table::Num(0.123456789, 4), "0.1235");
  EXPECT_EQ(Table::Int(-12), "-12");
}

TEST(TableTest, CsvExport) {
  Table t({"x", "y"});
  ASSERT_TRUE(t.AddRow({"1", "a,b"}).ok());
  std::string path = ::testing::TempDir() + "/longdp_table.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"a,b\"");
  std::remove(path.c_str());
}

TEST(RunnerTest, RunsAllRepetitions) {
  std::atomic<int64_t> count{0};
  ASSERT_TRUE(RunRepetitions(100, 7,
                             [&](int64_t, util::Rng*) {
                               count.fetch_add(1);
                               return Status::OK();
                             })
                  .ok());
  EXPECT_EQ(count.load(), 100);
}

TEST(RunnerTest, DeterministicPerRepetitionSeeds) {
  std::vector<uint64_t> first(16, 0), second(16, 0);
  auto run = [&](std::vector<uint64_t>* sink, int threads) {
    return RunRepetitions(
        16, 99,
        [&](int64_t rep, util::Rng* rng) {
          (*sink)[static_cast<size_t>(rep)] = rng->Next();
          return Status::OK();
        },
        threads);
  };
  ASSERT_TRUE(run(&first, 1).ok());
  ASSERT_TRUE(run(&second, 8).ok());
  EXPECT_EQ(first, second);  // schedule-independent
}

TEST(RunnerTest, PropagatesErrors) {
  Status st = RunRepetitions(10, 1, [](int64_t rep, util::Rng*) {
    if (rep == 5) return Status::Internal("rep 5 failed");
    return Status::OK();
  });
  EXPECT_FALSE(st.ok());
}

TEST(RunnerTest, ZeroRepsIsOk) {
  EXPECT_TRUE(RunRepetitions(0, 1, [](int64_t, util::Rng*) {
                return Status::OK();
              }).ok());
}

TEST(FlagsTest, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--reps=50", "--rho", "0.01", "--verbose"};
  auto flags = Flags::Parse(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("reps", 0), 50);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rho", 0.0), 0.01);
  EXPECT_TRUE(flags.Has("verbose"));
  EXPECT_EQ(flags.GetString("missing", "def"), "def");
  EXPECT_EQ(flags.GetInt("missing", 3), 3);
}

TEST(FlagsTest, RepsFlagWinsOverDefault) {
  const char* argv[] = {"prog", "--reps=9"};
  auto flags = Flags::Parse(2, const_cast<char**>(argv));
  EXPECT_EQ(flags.Reps(100), 9);
}

TEST(FlagsTest, RepsDefault) {
  const char* argv[] = {"prog"};
  unsetenv("LONGDP_REPS");
  auto flags = Flags::Parse(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.Reps(100), 100);
}

TEST(FlagsTest, RepsEnvOverride) {
  const char* argv[] = {"prog"};
  setenv("LONGDP_REPS", "17", 1);
  auto flags = Flags::Parse(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.Reps(100), 17);
  unsetenv("LONGDP_REPS");
}

}  // namespace
}  // namespace harness
}  // namespace longdp
