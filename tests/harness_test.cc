#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "harness/aggregate.h"
#include "harness/flags.h"
#include "harness/runner.h"
#include "harness/table.h"

namespace longdp {
namespace harness {
namespace {

TEST(AggregateTest, SummaryStats) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  auto s = Summarize(v);
  EXPECT_EQ(s.count, 100);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.median, 50.5);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_NEAR(s.q025, 3.475, 1e-9);   // R type-7
  EXPECT_NEAR(s.q975, 97.525, 1e-9);
}

TEST(AggregateTest, EmptySummary) {
  auto s = Summarize({});
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(AggregateTest, AbsErrorSummary) {
  auto s = SummarizeAbsError({1.0, 3.0}, 2.0);
  EXPECT_DOUBLE_EQ(s.mean, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1.0);
}

TEST(TableTest, AlignmentAndArity) {
  Table t({"a", "long-header", "c"});
  ASSERT_TRUE(t.AddRow({"1", "2", "3"}).ok());
  EXPECT_TRUE(t.AddRow({"1", "2"}).IsInvalidArgument());
  std::ostringstream out;
  t.Print(out);
  std::string s = out.str();
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, Formatting) {
  EXPECT_EQ(Table::Num(0.123456789, 4), "0.1235");
  EXPECT_EQ(Table::Int(-12), "-12");
}

TEST(TableTest, CsvExport) {
  Table t({"x", "y"});
  ASSERT_TRUE(t.AddRow({"1", "a,b"}).ok());
  std::string path = ::testing::TempDir() + "/longdp_table.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"a,b\"");
  std::remove(path.c_str());
}

TEST(TableTest, CsvExportKeepsRoundTripPrecisionForValCells) {
  // Display text is rounded to 6 decimals, but the CSV must carry the raw
  // value: rho-scale numbers truncated to 6 decimals would corrupt any
  // stored baseline diffed against the file.
  const double v = 0.0001234567890123456;
  Table t({"label", "value"});
  ASSERT_TRUE(t.AddRow({"rho", Table::Val(v)}).ok());
  EXPECT_EQ(t.num_rows(), 1u);

  std::ostringstream printed;
  t.Print(printed);
  EXPECT_NE(printed.str().find("0.000123"), std::string::npos);

  std::string path = ::testing::TempDir() + "/longdp_table_rt.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  std::getline(in, line);
  auto comma = line.find(',');
  ASSERT_NE(comma, std::string::npos);
  EXPECT_EQ(std::strtod(line.c_str() + comma + 1, nullptr), v);
  std::remove(path.c_str());
}

TEST(TableTest, WriteCsvToUnwritablePathFails) {
  Table t({"x"});
  ASSERT_TRUE(t.AddRow({"1"}).ok());
  EXPECT_TRUE(t.WriteCsv("/nonexistent-dir/table.csv").IsIOError());
}

TEST(RunnerTest, RunsAllRepetitions) {
  std::atomic<int64_t> count{0};
  ASSERT_TRUE(RunRepetitions(100, 7,
                             [&](int64_t, uint64_t) {
                               count.fetch_add(1);
                               return Status::OK();
                             })
                  .ok());
  EXPECT_EQ(count.load(), 100);
}

TEST(RunnerTest, DeterministicPerRepetitionSeeds) {
  std::vector<uint64_t> first(16, 0), second(16, 0);
  auto run = [&](std::vector<uint64_t>* sink, int threads) {
    return RunRepetitions(
        16, 99,
        [&](int64_t rep, uint64_t rep_seed) {
          (*sink)[static_cast<size_t>(rep)] = rep_seed;
          return Status::OK();
        },
        threads);
  };
  ASSERT_TRUE(run(&first, 1).ok());
  ASSERT_TRUE(run(&second, 8).ok());
  EXPECT_EQ(first, second);  // schedule-independent
  // Distinct repetitions get distinct seeds.
  for (size_t i = 1; i < first.size(); ++i) {
    EXPECT_NE(first[i], first[0]) << "rep " << i;
  }
}

TEST(RunnerTest, PropagatesErrors) {
  Status st = RunRepetitions(10, 1, [](int64_t rep, uint64_t) {
    if (rep == 5) return Status::Internal("rep 5 failed");
    return Status::OK();
  });
  EXPECT_FALSE(st.ok());
}

TEST(RunnerTest, ZeroRepsIsOk) {
  EXPECT_TRUE(RunRepetitions(0, 1, [](int64_t, uint64_t) {
                return Status::OK();
              }).ok());
}

TEST(FlagsTest, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--reps=50", "--rho", "0.01", "--verbose"};
  auto flags = Flags::Parse(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("reps", 0), 50);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rho", 0.0), 0.01);
  EXPECT_TRUE(flags.Has("verbose"));
  EXPECT_EQ(flags.GetString("missing", "def"), "def");
  EXPECT_EQ(flags.GetInt("missing", 3), 3);
}

TEST(FlagsTest, RepsFlagWinsOverDefault) {
  const char* argv[] = {"prog", "--reps=9"};
  auto flags = Flags::Parse(2, const_cast<char**>(argv));
  EXPECT_EQ(flags.Reps(100), 9);
}

TEST(FlagsTest, RepsDefault) {
  const char* argv[] = {"prog"};
  unsetenv("LONGDP_REPS");
  auto flags = Flags::Parse(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.Reps(100), 100);
}

TEST(FlagsTest, RepsEnvOverride) {
  const char* argv[] = {"prog"};
  setenv("LONGDP_REPS", "17", 1);
  auto flags = Flags::Parse(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.Reps(100), 17);
  unsetenv("LONGDP_REPS");
}

TEST(FlagsTest, KeyValueSpaceAndEqualsFormsAgree) {
  const char* argv_eq[] = {"prog", "--rho=0.01", "--name=x"};
  const char* argv_sp[] = {"prog", "--rho", "0.01", "--name", "x"};
  auto eq = Flags::Parse(3, const_cast<char**>(argv_eq));
  auto sp = Flags::Parse(5, const_cast<char**>(argv_sp));
  EXPECT_DOUBLE_EQ(eq.GetDouble("rho", 0.0), sp.GetDouble("rho", 0.0));
  EXPECT_EQ(eq.GetString("name", ""), sp.GetString("name", ""));
}

TEST(FlagsTest, BareBooleanFlagValue) {
  const char* argv[] = {"prog", "--json", "--verbose", "--csv=out"};
  auto flags = Flags::Parse(4, const_cast<char**>(argv));
  EXPECT_TRUE(flags.Has("json"));
  EXPECT_EQ(flags.GetString("json", ""), "1");  // bare flags read as "1"
  EXPECT_TRUE(flags.Has("verbose"));
  EXPECT_EQ(flags.GetString("csv", ""), "out");
}

TEST(FlagsTest, MalformedIntFallsBackToDefault) {
  // strtoll with a null endptr would silently accept the "1" prefix of
  // "1o00"; the parser must reject partial parses.
  const char* argv[] = {"prog", "--reps=1o00", "--n=", "--k=12x",
                        "--t=999999999999999999999999"};
  auto flags = Flags::Parse(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("reps", 42), 42);
  EXPECT_EQ(flags.GetInt("n", 7), 7);
  EXPECT_EQ(flags.GetInt("k", 3), 3);
  EXPECT_EQ(flags.GetInt("t", 5), 5);  // out of range
  EXPECT_EQ(flags.Reps(100), 100);
}

TEST(FlagsTest, MalformedDoubleFallsBackToDefault) {
  const char* argv[] = {"prog", "--rho=0.00x5", "--tol=", "--beta=1.2.3"};
  auto flags = Flags::Parse(4, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("rho", 0.25), 0.25);
  EXPECT_DOUBLE_EQ(flags.GetDouble("tol", 1e-9), 1e-9);
  EXPECT_DOUBLE_EQ(flags.GetDouble("beta", 0.05), 0.05);
}

TEST(FlagsTest, WellFormedValuesStillParse) {
  const char* argv[] = {"prog", "--n=-12", "--rho=1e-3", "--big=123456789",
                        "--tiny=1e-310", "--huge=1e400"};
  auto flags = Flags::Parse(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("n", 0), -12);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rho", 0.0), 1e-3);
  EXPECT_EQ(flags.GetInt("big", 0), 123456789);
  // Subnormal values are valid doubles (ERANGE underflow is not an error)
  // but overflow to infinity is rejected.
  EXPECT_DOUBLE_EQ(flags.GetDouble("tiny", 0.0), 1e-310);
  EXPECT_DOUBLE_EQ(flags.GetDouble("huge", 0.5), 0.5);
}

TEST(FlagsTest, NonPositiveRepsRejected) {
  // --reps=-5 previously flowed into static_cast<size_t> vector sizes as a
  // ~2^64 allocation.
  const char* argv_neg[] = {"prog", "--reps=-5"};
  auto neg = Flags::Parse(2, const_cast<char**>(argv_neg));
  EXPECT_EQ(neg.Reps(100), 100);

  const char* argv_zero[] = {"prog", "--reps=0"};
  auto zero = Flags::Parse(2, const_cast<char**>(argv_zero));
  EXPECT_EQ(zero.Reps(100), 100);
}

TEST(FlagsTest, MalformedRepsEnvIgnored) {
  const char* argv[] = {"prog"};
  setenv("LONGDP_REPS", "1o00", 1);
  auto flags = Flags::Parse(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.Reps(100), 100);
  setenv("LONGDP_REPS", "-3", 1);
  EXPECT_EQ(flags.Reps(100), 100);
  unsetenv("LONGDP_REPS");
}

TEST(FlagsTest, ProgramNameAndPositionals) {
  const char* argv[] = {"/path/to/bench_diff", "a.json", "--tol=1e-6",
                        "b.json"};
  auto flags = Flags::Parse(4, const_cast<char**>(argv));
  EXPECT_EQ(flags.program_name(), "bench_diff");
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "a.json");
  EXPECT_EQ(flags.positional()[1], "b.json");
  EXPECT_DOUBLE_EQ(flags.GetDouble("tol", 0.0), 1e-6);
}

TEST(FlagsTest, ValuesAccessorExposesAllFlags) {
  const char* argv[] = {"prog", "--a=1", "--b=2"};
  auto flags = Flags::Parse(3, const_cast<char**>(argv));
  EXPECT_EQ(flags.values().size(), 2u);
  EXPECT_EQ(flags.values().at("a"), "1");
  EXPECT_EQ(flags.values().at("b"), "2");
}

}  // namespace
}  // namespace harness
}  // namespace longdp
