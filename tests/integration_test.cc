// End-to-end integration tests: the SIPP-like workload run through both
// synthesizers at the paper's parameters, checking cross-module behaviour —
// unbiasedness of the averaged answers, error bounds, accounting, and the
// consistency invariants at scale.

#include <gtest/gtest.h>

#include <cmath>

#include "core/cumulative_synthesizer.h"
#include "core/fixed_window_synthesizer.h"
#include "core/theory.h"
#include "data/sipp_simulator.h"
#include "harness/aggregate.h"
#include "harness/runner.h"
#include "query/cumulative_query.h"
#include "query/window_query.h"
#include "util/substream.h"

namespace longdp {
namespace {

class SippIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SippOptions opt;
    opt.num_households = 8000;  // scaled down for test runtime
    dataset_ = new data::LongitudinalDataset(
        data::SimulateSipp(opt, uint64_t{2024}).value());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static data::LongitudinalDataset* dataset_;
};

data::LongitudinalDataset* SippIntegrationTest::dataset_ = nullptr;

TEST_F(SippIntegrationTest, FixedWindowDebiasedAnswersAreUnbiased) {
  // Averaged over repetitions, the debiased quarterly answers converge on
  // ground truth (the paper's "unbiased estimate" claim for Figs 5-7 right
  // panels).
  const auto& ds = *dataset_;
  auto pred = query::MakeAtLeastOnes(3, 1);
  const int64_t kReps = 60;
  std::vector<double> estimates(static_cast<size_t>(kReps), 0.0);
  ASSERT_TRUE(harness::RunRepetitions(
                  kReps, 11,
                  [&](int64_t rep, uint64_t rep_seed) {
                    core::FixedWindowSynthesizer::Options opt;
                    opt.horizon = 12;
                    opt.window_k = 3;
                    opt.rho = 0.005;
                    opt.seed = rep_seed;
                    LONGDP_ASSIGN_OR_RETURN(
                        auto synth, core::FixedWindowSynthesizer::Create(opt));
                    for (int64_t t = 1; t <= 12; ++t) {
                      LONGDP_RETURN_NOT_OK(synth->ObserveRound(ds.Round(t)));
                    }
                    LONGDP_ASSIGN_OR_RETURN(
                        estimates[static_cast<size_t>(rep)],
                        synth->DebiasedAnswer(*pred));
                    return Status::OK();
                  })
                  .ok());
  double truth = query::EvaluateOnDataset(*pred, ds, 12).value();
  auto summary = harness::Summarize(estimates);
  // Noise stdev of a single 7-bin debiased answer ~ sqrt(7)*sigma/n; with
  // 60 reps the mean should be well within 5 standard errors.
  double se = summary.stddev / std::sqrt(static_cast<double>(kReps));
  EXPECT_NEAR(summary.mean, truth, 5.0 * se + 1e-4);
}

TEST_F(SippIntegrationTest, FixedWindowBiasMatchesPaddingPrediction) {
  // The biased answer exceeds the truth by ~ (#matching bins * npad)/n*,
  // the bias the paper's Fig 5-7 left panels display.
  // Use the widest query (7 of 8 bins match): padding contributes
  // 7 * npad fake matches, a bias far above the noise floor.
  const auto& ds = *dataset_;
  auto pred = query::MakeAtLeastOnes(3, 1);
  core::FixedWindowSynthesizer::Options opt;
  opt.horizon = 12;
  opt.window_k = 3;
  opt.rho = 0.005;
  opt.seed = 13;
  auto synth = core::FixedWindowSynthesizer::Create(opt).value();
  for (int64_t t = 1; t <= 12; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
  }
  double truth = query::EvaluateOnDataset(*pred, ds, 12).value();
  double biased = synth->BiasedAnswer(*pred).value();
  double debiased = synth->DebiasedAnswer(*pred).value();
  EXPECT_GT(biased - truth, 0.0);
  EXPECT_LT(std::fabs(debiased - truth), std::fabs(biased - truth));
}

TEST_F(SippIntegrationTest, CumulativeAnswersUnbiasedOverReps) {
  const auto& ds = *dataset_;
  const int64_t kReps = 60;
  std::vector<double> estimates(static_cast<size_t>(kReps), 0.0);
  ASSERT_TRUE(harness::RunRepetitions(
                  kReps, 17,
                  [&](int64_t rep, uint64_t rep_seed) {
                    core::CumulativeSynthesizer::Options opt;
                    opt.horizon = 12;
                    opt.rho = 0.005;
                    opt.seed = rep_seed;
                    LONGDP_ASSIGN_OR_RETURN(
                        auto synth, core::CumulativeSynthesizer::Create(opt));
                    for (int64_t t = 1; t <= 12; ++t) {
                      LONGDP_RETURN_NOT_OK(synth->ObserveRound(ds.Round(t)));
                    }
                    LONGDP_ASSIGN_OR_RETURN(
                        estimates[static_cast<size_t>(rep)],
                        synth->Answer(3));
                    return Status::OK();
                  })
                  .ok());
  double truth = query::EvaluateCumulativeOnDataset(ds, 12, 3).value();
  auto summary = harness::Summarize(estimates);
  double se = summary.stddev / std::sqrt(static_cast<double>(kReps));
  EXPECT_NEAR(summary.mean, truth, 5.0 * se + 2e-4);
}

TEST_F(SippIntegrationTest, BothAlgorithmsStayWithinTheoryEnvelope) {
  const auto& ds = *dataset_;
  // Fixed window, debiased per-bin error vs Theorem 3.2 / Corollary 3.3.
  double lambda =
      core::theory::MaxBinCountErrorBound(12, 3, 0.005, 0.05).value();
  core::FixedWindowSynthesizer::Options fopt;
  fopt.horizon = 12;
  fopt.window_k = 3;
  fopt.rho = 0.005;
  fopt.seed = 19;
  auto fixed = core::FixedWindowSynthesizer::Create(fopt).value();
  double max_bin_err = 0.0;
  for (int64_t t = 1; t <= 12; ++t) {
    ASSERT_TRUE(fixed->ObserveRound(ds.Round(t)).ok());
    if (!fixed->has_release()) continue;
    auto hist = fixed->SyntheticHistogram();
    auto truth = ds.WindowHistogram(t, 3).value();
    for (util::Pattern s = 0; s < 8; ++s) {
      max_bin_err = std::max(
          max_bin_err, std::fabs(static_cast<double>(
                           hist[s] - (truth[s] + fixed->npad()))));
    }
  }
  EXPECT_LE(max_bin_err, lambda * 1.5);  // soft check, single run

  // Cumulative max error vs Corollary B.1.
  double alpha =
      core::theory::CumulativeFractionErrorBound(12, 0.005, 0.05,
                                                 ds.num_users())
          .value();
  core::CumulativeSynthesizer::Options copt;
  copt.horizon = 12;
  copt.rho = 0.005;
  copt.seed = 20;
  auto cumulative = core::CumulativeSynthesizer::Create(copt).value();
  double max_frac_err = 0.0;
  for (int64_t t = 1; t <= 12; ++t) {
    ASSERT_TRUE(cumulative->ObserveRound(ds.Round(t)).ok());
    for (int64_t b = 1; b <= t; ++b) {
      double truth = query::EvaluateCumulativeOnDataset(ds, t, b).value();
      max_frac_err =
          std::max(max_frac_err,
                   std::fabs(cumulative->Answer(b).value() - truth));
    }
  }
  EXPECT_LE(max_frac_err, alpha * 1.5);
}

TEST_F(SippIntegrationTest, LinearCombinationQueriesAtNoExtraCost) {
  // Any linear combination over the k-window histogram is answerable from
  // the one release — demonstrated with a weighted "months in poverty this
  // quarter" expectation query.
  const auto& ds = *dataset_;
  std::vector<double> weights(8, 0.0);
  for (util::Pattern s = 0; s < 8; ++s) {
    weights[s] = static_cast<double>(util::Popcount(s)) / 3.0;
  }
  auto q = query::LinearWindowQuery::Create(3, weights).value();
  core::FixedWindowSynthesizer::Options opt;
  opt.horizon = 12;
  opt.window_k = 3;
  opt.rho = 0.05;
  opt.seed = 23;
  auto synth = core::FixedWindowSynthesizer::Create(opt).value();
  for (int64_t t = 1; t <= 12; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
  }
  double truth = q.EvaluateOnDataset(ds, 12).value();
  double synth_value =
      q.EvaluateOnHistogram(synth->SyntheticHistogram()).value();
  double debiased =
      query::DebiasedLinearValue(synth_value, q, synth->padding_spec())
          .value();
  EXPECT_NEAR(debiased, truth, 0.01);
}

TEST_F(SippIntegrationTest, CountOccReductionFromSynthesizerReleases) {
  // The Ghazi et al. CountOcc reduction (paper Section 1.1) evaluated on
  // the released threshold rows, zero-noise path: matches direct
  // evaluation on the data.
  const auto& ds = *dataset_;
  core::CumulativeSynthesizer::Options opt;
  opt.horizon = 12;
  opt.rho = std::numeric_limits<double>::infinity();
  auto synth = core::CumulativeSynthesizer::Create(opt).value();
  std::vector<std::vector<int64_t>> rows;
  for (int64_t t = 1; t <= 12; ++t) {
    ASSERT_TRUE(synth->ObserveRound(ds.Round(t)).ok());
    rows.push_back(synth->released_thresholds());
  }
  // For the zero-noise path the reduction's inputs are exact threshold
  // counts; spot-check its arithmetic for b = 3 between t1 = 6 and t2 = 12.
  auto direct = query::CountOccExactFromThresholds(rows[11], rows[5], 3);
  ASSERT_TRUE(direct.ok());
  int64_t expected = rows[11][3] - rows[5][2];
  EXPECT_EQ(direct.value(), expected);
}

}  // namespace
}  // namespace longdp
