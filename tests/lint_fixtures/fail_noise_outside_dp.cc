// Must produce longdp-noise-via-dp findings: distribution objects outside
// src/dp/ bypass the accountant entirely.
#include <random>

double SampleNoiseDirectly(std::mt19937* gen) {  // also longdp-no-raw-rng
  std::normal_distribution<double> gauss(0.0, 1.0);       // finding
  std::geometric_distribution<int> geom(0.5);             // finding
  return gauss(*gen) + static_cast<double>(geom(*gen));
}
