// Must produce TWO longdp-nolint-needs-justification findings: a blanket
// NOLINT with no rule list, and an unjustified suppression naming a
// clang-tidy rule. The justification policy covers every NOLINT in the
// tree, not only the longdp-* rules.
#include <cstdlib>

int BlanketAndForeignRule(const char* s) {
  int v = atoi(s);  // NOLINT
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = getenv("LONGDP_FIXTURE");
  return v + (env != nullptr ? 1 : 0);
}
