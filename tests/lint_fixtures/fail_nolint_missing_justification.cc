// Must produce TWO findings: the unordered iteration itself (an unjustified
// NOLINT does not suppress) plus longdp-nolint-needs-justification at the
// comment line.
#include <string>
#include <unordered_map>

double UnjustifiedSuppression() {
  std::unordered_map<std::string, double> weights;
  double total = 0.0;
  // NOLINTNEXTLINE(longdp-no-unordered-iteration)
  for (const auto& [key, w] : weights) {
    total += w;
  }
  return total;
}
