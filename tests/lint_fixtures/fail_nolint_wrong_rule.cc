// Must produce one longdp-no-unordered-iteration finding: the suppression
// names a different rule, so it does not apply (and triggers nothing else).
#include <string>
#include <unordered_map>

double WrongRuleNamed() {
  std::unordered_map<std::string, double> weights;
  double total = 0.0;
  // NOLINTNEXTLINE(longdp-no-raw-rng): justification for the wrong rule
  for (const auto& [key, w] : weights) {
    total += w;
  }
  return total;
}
