// Must produce longdp-no-raw-rng findings on the four marked lines:
// mt19937 engine, random_device, srand + time(nullptr) seeding, std::rand.
#include <cstdlib>
#include <ctime>
#include <random>

int DrawBadly() {
  std::mt19937 gen(std::random_device{}());  // 2 findings on this line
  std::srand(static_cast<unsigned>(std::time(nullptr)));  // 2 findings
  return static_cast<int>(gen() % 7) + std::rand() % 3;  // 1 finding
}
