// Must produce longdp-simd-contained findings on the marked lines: raw
// vendor intrinsics are only legal under src/util/simd/, behind the
// runtime dispatch table (util/simd/simd.h), so goldens never vary by ISA.
#include <immintrin.h>  // 1 finding: 'immintrin'

#include <cstdint>

int64_t Splat7Low() {
  __m256i v = _mm256_set1_epi64x(7);  // 2 findings: type + intrinsic
  return _mm256_extract_epi64(v, 0);  // 1 finding
}
