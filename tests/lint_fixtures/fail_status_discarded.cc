// Must produce longdp-status-checked findings on the three marked
// statements: a bare discard, a single-statement-if discard, and the
// (void)-cast escape hatch (rejected by policy — use a justified NOLINT).
#include "util/status.h"

namespace longdp {

Status SaveThing(int id);

void DiscardsEverywhere(bool urgent) {
  SaveThing(1);                 // finding: bare discard
  if (urgent) SaveThing(2);     // finding: discarded in branch
  (void)SaveThing(3);           // finding: (void) does not excuse it
}

}  // namespace longdp
