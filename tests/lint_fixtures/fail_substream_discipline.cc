// Must produce longdp-substream-discipline findings on the three marked
// lines: a named declaration, a brace-initialized member-style declaration,
// and a temporary. (This file is lint data, never compiled.)
#include "util/rng.h"

namespace longdp {

uint64_t DrawOutsideTheFactory() {
  util::Rng rng(42);  // 1 finding: named construction
  util::Rng forked = rng.Fork();  // 1 finding: second engine minted
  return rng.Next() ^ util::Rng(7).Next();  // 1 finding: temporary
}

}  // namespace longdp
