// Must produce longdp-no-unordered-iteration findings: a range-for over an
// unordered_map, and an explicit iterator loop over an unordered_set.
#include <string>
#include <unordered_map>
#include <unordered_set>

double SumInStdlibOrder() {
  std::unordered_map<std::string, double> weights;
  std::unordered_set<int> ids;
  double total = 0.0;
  for (const auto& [key, w] : weights) {  // finding
    total += w;
  }
  for (auto it = ids.begin(); it != ids.end(); ++it) {  // finding
    total += *it;
  }
  return total;
}
