// Must produce zero findings: draws flow through util::Rng, the unordered
// map is only probed (never iterated), and every Status is consumed.
#include "util/rng.h"
#include "util/status.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace longdp {

Status SaveThing(const std::string& path);

Status UseEverything(util::Rng* rng) {
  std::unordered_map<std::string, int> lookup;
  lookup["a"] = 1;
  const bool hit = lookup.count("a") > 0;
  const uint64_t draw = rng->UniformInt(hit ? 10 : 20);
  LONGDP_RETURN_NOT_OK(SaveThing("out-" + std::to_string(draw) + ".csv"));
  Status st = SaveThing("second.csv");
  if (!st.ok()) return st;
  return Status::OK();
}

}  // namespace longdp
