// Must produce zero findings: each violation below carries a NOLINT
// suppression that names its rule AND justifies itself.
#include <cstdlib>
#include <string>
#include <unordered_map>

#include "util/status.h"

namespace longdp {

Status SaveThing(int id);

double JustifiedSuppressions() {
  std::unordered_map<std::string, double> weights;
  double total = 0.0;
  // NOLINTNEXTLINE(longdp-no-unordered-iteration): sum is order-invariant
  for (const auto& [key, w] : weights) {
    total += w;
  }
  SaveThing(1);  // NOLINT(longdp-status-checked): fire-and-forget telemetry
  // A justified suppression of a non-longdp (clang-tidy) rule is also fine.
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read before threads exist
  const char* env = std::getenv("LONGDP_FIXTURE");
  return total + (env != nullptr ? 1.0 : 0.0);
}

}  // namespace longdp
