// Must produce zero findings: the one raw vector type is suppressed by a
// justified NOLINT naming longdp-simd-contained — the documented escape
// hatch for an ABI shim that must spell the vector type outside
// src/util/simd/.
#include <cstdint>

// NOLINTNEXTLINE(longdp-simd-contained): external ABI fixes this signature
extern "C" void ConsumeVector(__m256i v);
