// Must produce zero findings: every Status-returning call is consumed —
// assigned, tested, propagated, or returned.
#include "util/status.h"

namespace longdp {

Status SaveThing(int id);

Status ConsumesAll(bool flag) {
  Status st = SaveThing(1);
  if (!st.ok()) return st;
  if (SaveThing(2).ok()) {
    LONGDP_RETURN_NOT_OK(SaveThing(3));
  }
  bool fine = SaveThing(4).ok() && flag;
  return fine ? Status::OK() : SaveThing(5);
}

}  // namespace longdp
