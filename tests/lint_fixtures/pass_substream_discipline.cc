// Must produce zero longdp-substream-discipline findings: engines are only
// consumed through pointers/references, named in template arguments and
// qualifications, or constructed as keyed SubstreamRng substreams.
#include <memory>

#include "util/rng.h"
#include "util/substream.h"

namespace longdp {

class Rng;  // forward declaration is not a construction

double Consume(util::Rng* rng, util::Rng& other) {
  util::SubstreamRng stream(1, util::substream::kGeneric);
  const util::SubstreamRng leaf = stream.Derive(3).Leaf(5);
  std::unique_ptr<util::Rng> owned;
  (void)owned;
  return rng->UniformDouble() + other.UniformDouble() +
         static_cast<double>(leaf.key() % 97);
}

}  // namespace longdp
