// Must produce zero findings: unordered containers may be declared and
// probed (find/count/insert/subscript) — only *iterating* them is banned.
#include <string>
#include <unordered_map>
#include <unordered_set>

int ProbeOnly() {
  std::unordered_map<std::string, int> index;
  std::unordered_set<int> seen;
  index["a"] = 1;
  seen.insert(4);
  auto it = index.find("a");
  int total = (it != index.end()) ? it->second : 0;
  total += static_cast<int>(seen.count(4));
  return total;
}
