#include "local/randomized_response.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "util/mathutil.h"
#include "util/substream.h"

namespace longdp {
namespace local {
namespace {

LocalFrequencyOracle::Options Opt(int64_t horizon, double epsilon,
                                  ReportStrategy strategy) {
  LocalFrequencyOracle::Options options;
  options.horizon = horizon;
  options.epsilon = epsilon;
  options.strategy = strategy;
  return options;
}

TEST(LocalRrTest, CreateValidates) {
  EXPECT_FALSE(LocalFrequencyOracle::Create(
                   Opt(0, 1.0, ReportStrategy::kFreshPerRound))
                   .ok());
  EXPECT_FALSE(LocalFrequencyOracle::Create(
                   Opt(5, 0.0, ReportStrategy::kFreshPerRound))
                   .ok());
  EXPECT_FALSE(
      LocalFrequencyOracle::Create(
          Opt(5, std::numeric_limits<double>::infinity(),
              ReportStrategy::kFreshPerRound))
          .ok());
  auto bad_flip = Opt(5, 1.0, ReportStrategy::kMemoized);
  bad_flip.flip_bound = 0;
  EXPECT_FALSE(LocalFrequencyOracle::Create(bad_flip).ok());
}

TEST(LocalRrTest, RandomizerCalibration) {
  // T = 10, epsilon = 10 -> eps0 = 1, p = e/(1+e).
  auto oracle = LocalFrequencyOracle::Create(
                    Opt(10, 10.0, ReportStrategy::kFreshPerRound))
                    .value();
  double e = std::exp(1.0);
  EXPECT_NEAR(oracle->per_report_epsilon(), 1.0, 1e-12);
  EXPECT_NEAR(oracle->flip_keep_prob(), e / (1.0 + e), 1e-12);
  EXPECT_NEAR(oracle->flip_keep_prob() + oracle->flip_lie_prob(), 1.0,
              1e-12);
  // The per-report mechanism is eps0-DP: p/q = e^eps0.
  EXPECT_NEAR(oracle->flip_keep_prob() / oracle->flip_lie_prob(), e, 1e-9);
}

TEST(LocalRrTest, MemoizedBudgetUsesFlipBound) {
  auto opt = Opt(100, 2.0, ReportStrategy::kMemoized);
  opt.flip_bound = 4;
  auto oracle = LocalFrequencyOracle::Create(opt).value();
  EXPECT_NEAR(oracle->per_report_epsilon(), 2.0 / 8.0, 1e-12);
}

TEST(LocalRrTest, EstimatesAreUnbiased) {
  const int64_t kN = 50000, kT = 4;
  util::SubstreamRng data_rng(1, util::substream::kLocal);
  auto ds = data::BernoulliIid(kN, kT, 0.3, &data_rng).value();
  auto oracle = LocalFrequencyOracle::Create(
                    Opt(kT, 8.0, ReportStrategy::kFreshPerRound))
                    .value();
  util::SubstreamRng rng(2, util::substream::kLocal);
  for (int64_t t = 1; t <= kT; ++t) {
    auto est = oracle->ObserveRound(ds.Round(t), &rng);
    ASSERT_TRUE(est.ok());
    double truth = static_cast<double>(ds.Round(t).CountOnes()) / kN;
    EXPECT_NEAR(est.value(), truth,
                5.0 * oracle->EstimateStddevBound(kN))
        << "t=" << t;
  }
}

TEST(LocalRrTest, RandomizerFlipRatesMatchCalibration) {
  // Statistical flip-rate check on the randomizer itself, not just the
  // debiased estimate: on an all-ones round the mean raw report is p =
  // Pr[report 1 | true 1], on an all-zeros round it is q = Pr[report 1 |
  // true 0]. Recover the raw report mean by re-biasing the oracle's
  // unbiased estimate and pin both rates to the calibrated values.
  const int64_t kN = 20000, kT = 20;
  auto oracle = LocalFrequencyOracle::Create(
                    Opt(kT, 20.0, ReportStrategy::kFreshPerRound))
                    .value();
  const double p = oracle->flip_keep_prob();
  const double q = oracle->flip_lie_prob();
  const std::vector<uint8_t> ones(static_cast<size_t>(kN), 1);
  const std::vector<uint8_t> zeros(static_cast<size_t>(kN), 0);
  util::SubstreamRng rng(0xF11B, util::substream::kLocal);
  util::MomentAccumulator keep_rate, lie_rate;
  for (int64_t t = 1; t <= kT; ++t) {
    // Alternate so both rates come from the same oracle instance.
    const bool odd = (t % 2) == 1;
    auto est = oracle->ObserveRound(odd ? ones : zeros, &rng);
    ASSERT_TRUE(est.ok());
    const double mean_report = est.value() * (p - q) + q;
    (odd ? keep_rate : lie_rate).Add(mean_report);
  }
  // Each round's mean report averages kN Bernoulli(p or q) draws; five
  // standard errors over the kT/2 rounds is a generous gate.
  const double rounds = kT / 2.0;
  const double se_p = std::sqrt(p * (1.0 - p) / (kN * rounds));
  const double se_q = std::sqrt(q * (1.0 - q) / (kN * rounds));
  EXPECT_NEAR(keep_rate.mean(), p, 5.0 * se_p);
  EXPECT_NEAR(lie_rate.mean(), q, 5.0 * se_q);
}

TEST(LocalRrTest, MemoizedRepliesAreStable) {
  // With constant data, memoized reports never change, so the estimate is
  // identical every round.
  const int64_t kN = 2000, kT = 6;
  auto ds = data::ExtremeAllOnes(kN, kT).value();
  auto opt = Opt(kT, 2.0, ReportStrategy::kMemoized);
  auto oracle = LocalFrequencyOracle::Create(opt).value();
  util::SubstreamRng rng(3, util::substream::kLocal);
  double first = oracle->ObserveRound(ds.Round(1), &rng).value();
  for (int64_t t = 2; t <= kT; ++t) {
    EXPECT_DOUBLE_EQ(oracle->ObserveRound(ds.Round(t), &rng).value(), first);
  }
}

TEST(LocalRrTest, ErrorGrowsWithHorizonUnlikeCentral) {
  // The fresh-per-round oracle's per-report budget shrinks with T, so its
  // stddev bound grows ~linearly in T at fixed total epsilon — the local
  // model's poly(T) hit the central algorithms avoid.
  auto short_h = LocalFrequencyOracle::Create(
                     Opt(4, 2.0, ReportStrategy::kFreshPerRound))
                     .value();
  auto long_h = LocalFrequencyOracle::Create(
                    Opt(64, 2.0, ReportStrategy::kFreshPerRound))
                    .value();
  EXPECT_GT(long_h->EstimateStddevBound(10000),
            5.0 * short_h->EstimateStddevBound(10000));
}

TEST(LocalRrTest, InputValidationOnObserve) {
  auto oracle = LocalFrequencyOracle::Create(
                    Opt(2, 1.0, ReportStrategy::kFreshPerRound))
                    .value();
  util::SubstreamRng rng(5, util::substream::kLocal);
  std::vector<uint8_t> round = {0, 1, 1};
  ASSERT_TRUE(oracle->ObserveRound(round, &rng).ok());
  std::vector<uint8_t> wrong = {0, 1};
  EXPECT_TRUE(
      oracle->ObserveRound(wrong, &rng).status().IsInvalidArgument());
  std::vector<uint8_t> bad = {0, 1, 2};
  EXPECT_TRUE(oracle->ObserveRound(bad, &rng).status().IsInvalidArgument());
  ASSERT_TRUE(oracle->ObserveRound(round, &rng).ok());
  EXPECT_TRUE(oracle->ObserveRound(round, &rng).status().IsOutOfRange());
}

TEST(LocalRrTest, StrategyNames) {
  EXPECT_STREQ(ReportStrategyName(ReportStrategy::kFreshPerRound),
               "fresh-per-round");
  EXPECT_STREQ(ReportStrategyName(ReportStrategy::kMemoized), "memoized");
}

}  // namespace
}  // namespace local
}  // namespace longdp
