#include "persist/crc32c.h"

#include <gtest/gtest.h>

#include <string>

namespace longdp {
namespace persist {
namespace {

// Reference vectors from RFC 3720 (iSCSI) appendix B.4 — any conforming
// CRC32C must reproduce these exactly.
TEST(Crc32cTest, KnownVectors) {
  EXPECT_EQ(Crc32c("", 0), 0u);
  const std::string check = "123456789";
  EXPECT_EQ(Crc32c(check.data(), check.size()), 0xE3069283u);
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  const std::string ones(32, '\xFF');
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
  std::string ascending(32, '\0');
  for (size_t i = 0; i < ascending.size(); ++i) {
    ascending[i] = static_cast<char>(i);
  }
  EXPECT_EQ(Crc32c(ascending.data(), ascending.size()), 0x46DD794Eu);
}

TEST(Crc32cTest, StreamingMatchesOneShot) {
  std::string data;
  for (int i = 0; i < 1000; ++i) {
    data += static_cast<char>((i * 37 + 11) & 0xFF);
  }
  const uint32_t whole = Crc32c(data.data(), data.size());
  // Every split point, including ones that leave the slicing loop a
  // non-multiple-of-4 remainder.
  for (size_t cut : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{7},
                     size_t{500}, size_t{999}, data.size()}) {
    uint32_t crc = Crc32cExtend(0, data.data(), cut);
    crc = Crc32cExtend(crc, data.data() + cut, data.size() - cut);
    EXPECT_EQ(crc, whole) << "split at " << cut;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string data = "the release log must not rot silently";
  const uint32_t clean = Crc32c(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] = static_cast<char>(data[byte] ^ (1 << bit));
      EXPECT_NE(Crc32c(data.data(), data.size()), clean)
          << "flip at byte " << byte << " bit " << bit;
      data[byte] = static_cast<char>(data[byte] ^ (1 << bit));
    }
  }
}

}  // namespace
}  // namespace persist
}  // namespace longdp
