// End-to-end durability: DurableSession + bindings over the real
// synthesizers. The acceptance bar (mirrored by the SIGKILL suite in
// durability_crash_replay_test.cc): interrupt a run at ANY round, reopen,
// re-feed the replay region, continue — and the WAL must end up
// byte-identical to the uninterrupted run's, including when the recovered
// process uses a different shards x threads grid.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "data/generators.h"
#include "persist/bindings.h"
#include "persist/session.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "util/thread_pool.h"

namespace longdp {
namespace persist {
namespace {

constexpr int64_t kHorizon = 12;
constexpr int64_t kUsers = 400;
constexpr uint64_t kDataSeed = 20260808;
constexpr uint64_t kRunSeed = 424243;

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/longdp_session_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    root_ = tmpl;
  }
  void TearDown() override {
    std::string cmd = "rm -rf '" + root_ + "'";
    if (std::system(cmd.c_str()) != 0) {
      ADD_FAILURE() << "cleanup of " << root_ << " failed";
    }
  }

  std::string Dir(const std::string& name) const { return root_ + "/" + name; }

  std::string root_;
};

// Round t's bits, regenerated deterministically (keyed generator) so a
// "different process" can reproduce them exactly.
std::vector<uint8_t> RoundBits(int64_t t) {
  static const data::LongitudinalDataset ds =
      data::BernoulliIid(kUsers, kHorizon, 0.3, kDataSeed, nullptr).value();
  std::vector<uint8_t> bits(static_cast<size_t>(kUsers));
  for (int64_t i = 0; i < kUsers; ++i) {
    bits[static_cast<size_t>(i)] = static_cast<uint8_t>(ds.Bit(i, t));
  }
  return bits;
}

// Categorical rounds: symbols derived from two keyed bit datasets so they
// are deterministic across "processes" without a shared RNG object.
std::vector<uint8_t> RoundSymbols(int64_t t, int alphabet) {
  static const data::LongitudinalDataset lo =
      data::BernoulliIid(kUsers, kHorizon, 0.5, kDataSeed + 1, nullptr)
          .value();
  static const data::LongitudinalDataset hi =
      data::BernoulliIid(kUsers, kHorizon, 0.5, kDataSeed + 2, nullptr)
          .value();
  std::vector<uint8_t> symbols(static_cast<size_t>(kUsers));
  for (int64_t i = 0; i < kUsers; ++i) {
    const int code = lo.Bit(i, t) + 2 * hi.Bit(i, t);
    symbols[static_cast<size_t>(i)] =
        static_cast<uint8_t>(code % alphabet);
  }
  return symbols;
}

core::CumulativeSynthesizer::Options CumulativeOpts(util::ThreadPool* pool) {
  core::CumulativeSynthesizer::Options opt;
  opt.horizon = kHorizon;
  opt.rho = 0.25;
  opt.seed = kRunSeed;
  opt.pool = pool;
  return opt;
}

core::FixedWindowSynthesizer::Options FixedWindowOpts(
    util::ThreadPool* pool) {
  core::FixedWindowSynthesizer::Options opt;
  opt.horizon = kHorizon;
  opt.window_k = 3;
  opt.rho = 0.25;
  opt.seed = kRunSeed;
  opt.pool = pool;
  return opt;
}

core::CategoricalWindowSynthesizer::Options CategoricalOpts(
    util::ThreadPool* pool) {
  core::CategoricalWindowSynthesizer::Options opt;
  opt.horizon = kHorizon;
  opt.window_k = 2;
  opt.alphabet = 3;
  opt.rho = 0.25;
  opt.seed = kRunSeed;
  opt.pool = pool;
  return opt;
}

DurableSession::Options SessionOpts(const std::string& dir,
                                    int64_t snapshot_every = 4) {
  DurableSession::Options opt;
  opt.dir = dir;
  opt.snapshot_every = snapshot_every;
  return opt;
}

std::vector<std::string> WalRecords(const std::string& dir) {
  auto read =
      ReadWal(DurableSession::WalPath(dir), WalReadMode::kStrict);
  EXPECT_TRUE(read.ok()) << read.status().ToString();
  return read.ok() ? read->records : std::vector<std::string>{};
}

// Runs `Run` rounds [session round + 1, last] through a DurableRun.
template <typename Run, typename DataFn>
void Feed(Run* run, int64_t last, const DataFn& data) {
  for (int64_t t = run->synth().t() + 1; t <= last; ++t) {
    ASSERT_TRUE(run->ObserveRound(data(t)).ok()) << "round " << t;
  }
}

TEST_F(SessionTest, CumulativeInterruptedRunMatchesUninterrupted) {
  const auto data = [](int64_t t) { return RoundBits(t); };
  {
    auto full = DurableCumulative::Open(SessionOpts(Dir("full")),
                                        CumulativeOpts(nullptr));
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    Feed(full->get(), kHorizon, data);
  }
  // Interrupt at every possible round (drop the session object, which is
  // what a clean kill looks like after the round's fsync returns).
  for (int64_t stop = 0; stop <= kHorizon; ++stop) {
    const std::string dir = Dir("stop" + std::to_string(stop));
    {
      auto first = DurableCumulative::Open(SessionOpts(dir),
                                           CumulativeOpts(nullptr));
      ASSERT_TRUE(first.ok()) << first.status().ToString();
      Feed(first->get(), stop, data);
    }
    {
      auto resumed = DurableCumulative::Open(SessionOpts(dir),
                                             CumulativeOpts(nullptr));
      ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
      // Snapshot every 4: the synthesizer restores to the last snapshot
      // round and the session asks for the rest of the WAL as replay.
      EXPECT_EQ((*resumed)->session().replay_remaining(),
                stop - (*resumed)->synth().t());
      Feed(resumed->get(), kHorizon, data);
      EXPECT_EQ((*resumed)->session().replay_remaining(), 0);
    }
    EXPECT_EQ(WalRecords(dir), WalRecords(Dir("full"))) << "stop=" << stop;
  }
}

TEST_F(SessionTest, FixedWindowRecoversOntoDifferentGrid) {
  const auto data = [](int64_t t) { return RoundBits(t); };
  {
    auto full = DurableFixedWindow::Open(SessionOpts(Dir("full")),
                                         FixedWindowOpts(nullptr));
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    Feed(full->get(), kHorizon, data);
  }
  // First half on a 16-shard, 2-lane grid; recovery on 4 shards, 8 lanes.
  {
    util::ThreadPool pool(2, 16);
    auto first = DurableFixedWindow::Open(SessionOpts(Dir("run")),
                                          FixedWindowOpts(&pool));
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    Feed(first->get(), 7, data);
  }
  {
    util::ThreadPool pool(8, 4);
    auto resumed = DurableFixedWindow::Open(SessionOpts(Dir("run")),
                                            FixedWindowOpts(&pool));
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    Feed(resumed->get(), kHorizon, data);
  }
  EXPECT_EQ(WalRecords(Dir("run")), WalRecords(Dir("full")));
}

TEST_F(SessionTest, CategoricalInterruptedRunMatchesUninterrupted) {
  const auto data = [](int64_t t) { return RoundSymbols(t, 3); };
  {
    auto full = DurableCategorical::Open(SessionOpts(Dir("full")),
                                         CategoricalOpts(nullptr));
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    Feed(full->get(), kHorizon, data);
  }
  for (int64_t stop : {int64_t{1}, int64_t{2}, int64_t{5}, int64_t{9},
                       kHorizon}) {
    const std::string dir = Dir("stop" + std::to_string(stop));
    {
      auto first = DurableCategorical::Open(SessionOpts(dir),
                                            CategoricalOpts(nullptr));
      ASSERT_TRUE(first.ok()) << first.status().ToString();
      Feed(first->get(), stop, data);
    }
    {
      auto resumed = DurableCategorical::Open(SessionOpts(dir),
                                              CategoricalOpts(nullptr));
      ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
      Feed(resumed->get(), kHorizon, data);
    }
    EXPECT_EQ(WalRecords(dir), WalRecords(Dir("full"))) << "stop=" << stop;
  }
}

TEST_F(SessionTest, TornWalTailIsTruncatedAndRunResumes) {
  const auto data = [](int64_t t) { return RoundBits(t); };
  {
    auto first = DurableCumulative::Open(SessionOpts(Dir("run")),
                                         CumulativeOpts(nullptr));
    ASSERT_TRUE(first.ok());
    Feed(first->get(), 6, data);
  }
  // A crash mid-append leaves half a frame.
  {
    std::ofstream wal(DurableSession::WalPath(Dir("run")),
                      std::ios::binary | std::ios::app);
    wal << std::string("\x40\x00\x00\x00\xAA", 5);
  }
  {
    auto resumed = DurableCumulative::Open(SessionOpts(Dir("run")),
                                           CumulativeOpts(nullptr));
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_TRUE((*resumed)->session().recovery().torn_tail_truncated);
    Feed(resumed->get(), kHorizon, data);
  }
  {
    auto full = DurableCumulative::Open(SessionOpts(Dir("full")),
                                        CumulativeOpts(nullptr));
    ASSERT_TRUE(full.ok());
    Feed(full->get(), kHorizon, data);
  }
  EXPECT_EQ(WalRecords(Dir("run")), WalRecords(Dir("full")));
}

TEST_F(SessionTest, ReplayDivergenceIsDataLoss) {
  const auto data = [](int64_t t) { return RoundBits(t); };
  {
    // snapshot_every = 0: recovery must replay the whole log, so frame 1
    // is inside the replay region.
    auto first = DurableCumulative::Open(SessionOpts(Dir("run"), 0),
                                         CumulativeOpts(nullptr));
    ASSERT_TRUE(first.ok());
    Feed(first->get(), 3, data);
  }
  // Forge the log: rewrite it with round 2's record altered but correctly
  // framed (valid CRC). Recovery cannot see this from the file alone —
  // the replay byte-compare is the only guard against published history
  // being rewritten.
  {
    auto records = WalRecords(Dir("run"));
    ASSERT_EQ(records.size(), 3u);
    records[1][records[1].size() - 1] ^= 1;
    ASSERT_EQ(::unlink(DurableSession::WalPath(Dir("run")).c_str()), 0);
    auto writer = WalWriter::Open(DurableSession::WalPath(Dir("run")));
    ASSERT_TRUE(writer.ok());
    for (const auto& r : records) ASSERT_TRUE((*writer)->Append(r).ok());
  }
  auto resumed = DurableCumulative::Open(SessionOpts(Dir("run"), 0),
                                         CumulativeOpts(nullptr));
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_TRUE((*resumed)->ObserveRound(data(1)).ok());
  Status second = (*resumed)->ObserveRound(data(2));
  EXPECT_TRUE(second.IsDataLoss()) << second.ToString();
}

TEST_F(SessionTest, SnapshotAheadOfWalIsDataLoss) {
  const auto data = [](int64_t t) { return RoundBits(t); };
  {
    auto first = DurableCumulative::Open(SessionOpts(Dir("run"), 4),
                                         CumulativeOpts(nullptr));
    ASSERT_TRUE(first.ok());
    Feed(first->get(), 8, data);  // snapshot cut at round 8
  }
  // Lose WAL frames past round 5 (snapshot says 8): unrecoverable.
  {
    auto read = ReadWal(DurableSession::WalPath(Dir("run")),
                        WalReadMode::kStrict);
    ASSERT_TRUE(read.ok());
    uint64_t keep = 0;
    for (size_t i = 0; i < 5; ++i) keep += 8 + read->records[i].size();
    ASSERT_TRUE(
        TruncateWal(DurableSession::WalPath(Dir("run")), keep).ok());
  }
  auto resumed = DurableCumulative::Open(SessionOpts(Dir("run"), 4),
                                         CumulativeOpts(nullptr));
  EXPECT_TRUE(resumed.status().IsDataLoss()) << resumed.status().ToString();
  EXPECT_NE(resumed.status().message().find("missing"), std::string::npos);
}

TEST_F(SessionTest, SeedMismatchIsRefused) {
  const auto data = [](int64_t t) { return RoundBits(t); };
  {
    auto first = DurableCumulative::Open(SessionOpts(Dir("run")),
                                         CumulativeOpts(nullptr));
    ASSERT_TRUE(first.ok());
    Feed(first->get(), 4, data);  // snapshot at round 4
  }
  auto opts = CumulativeOpts(nullptr);
  opts.seed = kRunSeed + 1;
  auto resumed = DurableCumulative::Open(SessionOpts(Dir("run")), opts);
  EXPECT_TRUE(resumed.status().IsInvalidArgument())
      << resumed.status().ToString();
  EXPECT_NE(resumed.status().message().find("seed"), std::string::npos);
}

TEST_F(SessionTest, KindMismatchIsRefused) {
  const auto data = [](int64_t t) { return RoundBits(t); };
  {
    auto first = DurableCumulative::Open(SessionOpts(Dir("run")),
                                         CumulativeOpts(nullptr));
    ASSERT_TRUE(first.ok());
    Feed(first->get(), 4, data);
  }
  auto resumed = DurableFixedWindow::Open(SessionOpts(Dir("run")),
                                          FixedWindowOpts(nullptr));
  EXPECT_TRUE(resumed.status().IsInvalidArgument())
      << resumed.status().ToString();
  EXPECT_NE(resumed.status().message().find("kind"), std::string::npos);
}

TEST_F(SessionTest, CorruptSnapshotSurfacesDataLossNotSilentRestart) {
  const auto data = [](int64_t t) { return RoundBits(t); };
  {
    auto first = DurableCumulative::Open(SessionOpts(Dir("run")),
                                         CumulativeOpts(nullptr));
    ASSERT_TRUE(first.ok());
    Feed(first->get(), 4, data);
  }
  const std::string path = DurableSession::SnapshotPath(Dir("run"));
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x20);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  auto resumed = DurableCumulative::Open(SessionOpts(Dir("run")),
                                         CumulativeOpts(nullptr));
  EXPECT_TRUE(resumed.status().IsDataLoss()) << resumed.status().ToString();
}

TEST_F(SessionTest, WalSurvivesSnapshotsAsCompleteReleaseLog) {
  // Snapshots every round must never shorten the log: the WAL holds every
  // round from 1 to T afterwards.
  const auto data = [](int64_t t) { return RoundBits(t); };
  auto run = DurableCumulative::Open(SessionOpts(Dir("run"), 1),
                                     CumulativeOpts(nullptr));
  ASSERT_TRUE(run.ok());
  Feed(run->get(), kHorizon, data);
  auto records = WalRecords(Dir("run"));
  ASSERT_EQ(records.size(), static_cast<size_t>(kHorizon));
  for (int64_t t = 1; t <= kHorizon; ++t) {
    EXPECT_EQ(records[static_cast<size_t>(t - 1)]
                  .substr(0, records[static_cast<size_t>(t - 1)].find(' ')),
              std::to_string(t));
  }
}

}  // namespace
}  // namespace persist
}  // namespace longdp
