#include "persist/snapshot.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace longdp {
namespace persist {
namespace {

// Each test gets a private directory under /tmp; removed on teardown.
class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/longdp_snapshot_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    // Best-effort cleanup; tests create at most a handful of files.
    std::string cmd = "rm -rf '" + dir_ + "'";
    if (std::system(cmd.c_str()) != 0) {
      ADD_FAILURE() << "cleanup of " << dir_ << " failed";
    }
  }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  static std::string Slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  static void Spit(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  static SnapshotMeta Meta() {
    SnapshotMeta meta;
    meta.kind = "cumulative";
    meta.format_version = 4;
    meta.seed = 0xDEADBEEFu;
    meta.round = 17;
    return meta;
  }

  std::string dir_;
};

TEST_F(SnapshotTest, RoundTripPreservesMetaAndPayload) {
  const std::string payload = "line one\nline two\nbinary \x01\x02\x03 ok\n";
  ASSERT_TRUE(WriteSnapshot(Path("snap"), Meta(), payload).ok());
  auto read = ReadSnapshot(Path("snap"));
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->meta.kind, "cumulative");
  EXPECT_EQ(read->meta.format_version, 4);
  EXPECT_EQ(read->meta.seed, 0xDEADBEEFu);
  EXPECT_EQ(read->meta.round, 17);
  EXPECT_EQ(read->payload, payload);
  // The atomic dance must not leave its temp file behind.
  EXPECT_EQ(::access(Path("snap").c_str(), F_OK), 0);
  EXPECT_NE(::access(Path("snap.tmp").c_str(), F_OK), 0);
}

TEST_F(SnapshotTest, EmptyPayloadRoundTrips) {
  ASSERT_TRUE(WriteSnapshot(Path("snap"), Meta(), "").ok());
  auto read = ReadSnapshot(Path("snap"));
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(read->payload.empty());
}

TEST_F(SnapshotTest, MissingFileIsNotFound) {
  auto read = ReadSnapshot(Path("absent"));
  EXPECT_TRUE(read.status().IsNotFound()) << read.status().ToString();
}

TEST_F(SnapshotTest, VersionSkewIsInvalidArgumentNotDataLoss) {
  // A hypothetical older/newer snapshot format: recognizably a snapshot,
  // but not one this build can read.
  Spit(Path("snap"), "longdp-snapshot-v0 cumulative 4 1 17 3 00000000\nabc");
  auto read = ReadSnapshot(Path("snap"));
  EXPECT_TRUE(read.status().IsInvalidArgument()) << read.status().ToString();
  EXPECT_NE(read.status().message().find("unsupported snapshot version"),
            std::string::npos)
      << read.status().message();
}

TEST_F(SnapshotTest, ForeignFileIsInvalidArgument) {
  Spit(Path("snap"), "PKzip-or-whatever\nbytes");
  auto read = ReadSnapshot(Path("snap"));
  EXPECT_TRUE(read.status().IsInvalidArgument()) << read.status().ToString();
}

TEST_F(SnapshotTest, MalformedHeaderNumberIsInvalidArgument) {
  // "17x" for the round: the strict-parse sweep must reject the token, not
  // read 17 and leave "x" to corrupt the next field.
  Spit(Path("snap"), "longdp-snapshot-v1 cumulative 4 1 17x 3 00000000\nabc");
  auto read = ReadSnapshot(Path("snap"));
  EXPECT_TRUE(read.status().IsInvalidArgument()) << read.status().ToString();
}

TEST_F(SnapshotTest, NegativeSeedIsInvalidArgument) {
  // A corrupted "-1" seed must not wrap to 2^64 - 1.
  Spit(Path("snap"), "longdp-snapshot-v1 cumulative 4 -1 17 3 00000000\nabc");
  auto read = ReadSnapshot(Path("snap"));
  EXPECT_TRUE(read.status().IsInvalidArgument()) << read.status().ToString();
}

TEST_F(SnapshotTest, TruncatedPayloadIsDataLoss) {
  ASSERT_TRUE(WriteSnapshot(Path("snap"), Meta(), "0123456789").ok());
  std::string bytes = Slurp(Path("snap"));
  Spit(Path("snap"), bytes.substr(0, bytes.size() - 4));
  auto read = ReadSnapshot(Path("snap"));
  EXPECT_TRUE(read.status().IsDataLoss()) << read.status().ToString();
  EXPECT_NE(read.status().message().find("truncated"), std::string::npos);
}

TEST_F(SnapshotTest, TrailingBytesArePinnedAsDataLoss) {
  ASSERT_TRUE(WriteSnapshot(Path("snap"), Meta(), "0123456789").ok());
  Spit(Path("snap"), Slurp(Path("snap")) + "junk");
  auto read = ReadSnapshot(Path("snap"));
  EXPECT_TRUE(read.status().IsDataLoss()) << read.status().ToString();
  EXPECT_NE(read.status().message().find("trailing"), std::string::npos);
}

TEST_F(SnapshotTest, BitFlippedPayloadIsDataLoss) {
  ASSERT_TRUE(WriteSnapshot(Path("snap"), Meta(), "0123456789").ok());
  std::string bytes = Slurp(Path("snap"));
  bytes[bytes.size() - 3] = static_cast<char>(bytes[bytes.size() - 3] ^ 0x10);
  Spit(Path("snap"), bytes);
  auto read = ReadSnapshot(Path("snap"));
  EXPECT_TRUE(read.status().IsDataLoss()) << read.status().ToString();
  EXPECT_NE(read.status().message().find("checksum"), std::string::npos);
}

TEST_F(SnapshotTest, FailedWriteLeavesOldSnapshotIntact) {
  // The atomic-replace contract: if writing the NEW snapshot fails, the
  // OLD one must still read back clean.
  ASSERT_TRUE(WriteSnapshot(Path("snap"), Meta(), "old payload").ok());
  // Force the failure by making the temp path an existing directory.
  ASSERT_EQ(::mkdir(Path("snap.tmp").c_str(), 0755), 0);
  SnapshotMeta meta = Meta();
  meta.round = 18;
  Status write = WriteSnapshot(Path("snap"), meta, "new payload");
  EXPECT_FALSE(write.ok());
  ASSERT_EQ(::rmdir(Path("snap.tmp").c_str()), 0);
  auto read = ReadSnapshot(Path("snap"));
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->payload, "old payload");
  EXPECT_EQ(read->meta.round, 17);
}

TEST_F(SnapshotTest, DevFullWriteFailureIsIOError) {
  // ENOSPC injection via the kernel's always-full device. Environments
  // without it (non-Linux, stripped-down containers) skip.
  if (::access("/dev/full", W_OK) != 0) {
    GTEST_SKIP() << "/dev/full not available";
  }
  Status write = WriteSnapshotDirect("/dev/full", Meta(),
                                     std::string(1 << 16, 'x'));
  EXPECT_TRUE(write.IsIOError()) << write.ToString();
}

TEST_F(SnapshotTest, EncodeDecodeWithoutFilesystem) {
  const std::string payload(100, '\x7F');
  auto decoded = DecodeSnapshot(EncodeSnapshot(Meta(), payload));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->payload, payload);
  EXPECT_EQ(decoded->meta.round, 17);
}

}  // namespace
}  // namespace persist
}  // namespace longdp
