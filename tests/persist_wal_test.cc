#include "persist/wal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

namespace longdp {
namespace persist {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/longdp_wal_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    path_ = dir_ + "/wal";
  }
  void TearDown() override {
    std::string cmd = "rm -rf '" + dir_ + "'";
    if (std::system(cmd.c_str()) != 0) {
      ADD_FAILURE() << "cleanup of " << dir_ << " failed";
    }
  }

  void AppendAll(const std::vector<std::string>& records) {
    auto writer = WalWriter::Open(path_);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const std::string& r : records) {
      ASSERT_TRUE((*writer)->Append(r).ok());
    }
  }

  std::string Slurp() const {
    std::ifstream in(path_, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  void Spit(const std::string& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  std::string dir_;
  std::string path_;
};

TEST_F(WalTest, AppendAndReadBack) {
  const std::vector<std::string> records = {"1 10 7 3", "2 10 8 3",
                                            std::string("\x00\x01", 2), ""};
  AppendAll(records);
  for (WalReadMode mode :
       {WalReadMode::kStrict, WalReadMode::kTolerateTornTail}) {
    auto read = ReadWal(path_, mode);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    EXPECT_EQ(read->records, records);
    EXPECT_FALSE(read->torn_tail);
    EXPECT_EQ(read->valid_bytes, Slurp().size());
  }
}

TEST_F(WalTest, MissingFileIsNotFound) {
  auto read = ReadWal(path_, WalReadMode::kStrict);
  EXPECT_TRUE(read.status().IsNotFound()) << read.status().ToString();
}

TEST_F(WalTest, FreshlyOpenedEmptyLogHasNoRecords) {
  { ASSERT_TRUE(WalWriter::Open(path_).ok()); }
  auto read = ReadWal(path_, WalReadMode::kStrict);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(read->records.empty());
  EXPECT_EQ(read->valid_bytes, 0u);
}

TEST_F(WalTest, TornHeaderAtTailToleratedStrictFails) {
  AppendAll({"round one", "round two"});
  const std::string clean = Slurp();
  // A crash mid-append: only 3 of the 8 header bytes landed.
  Spit(clean + std::string("\x05\x00\x00", 3));

  auto tolerant = ReadWal(path_, WalReadMode::kTolerateTornTail);
  ASSERT_TRUE(tolerant.ok()) << tolerant.status().ToString();
  EXPECT_EQ(tolerant->records.size(), 2u);
  EXPECT_TRUE(tolerant->torn_tail);
  EXPECT_EQ(tolerant->valid_bytes, clean.size());

  auto strict = ReadWal(path_, WalReadMode::kStrict);
  EXPECT_TRUE(strict.status().IsDataLoss()) << strict.status().ToString();
}

TEST_F(WalTest, TornPayloadAtTailToleratedStrictFails) {
  AppendAll({"round one"});
  const std::string clean = Slurp();
  // A full header promising 100 bytes, with only 4 present.
  std::string torn("\x64\x00\x00\x00\x00\x00\x00\x00", 8);
  torn += "abcd";
  Spit(clean + torn);

  auto tolerant = ReadWal(path_, WalReadMode::kTolerateTornTail);
  ASSERT_TRUE(tolerant.ok()) << tolerant.status().ToString();
  EXPECT_EQ(tolerant->records.size(), 1u);
  EXPECT_TRUE(tolerant->torn_tail);
  EXPECT_EQ(tolerant->valid_bytes, clean.size());

  auto strict = ReadWal(path_, WalReadMode::kStrict);
  EXPECT_TRUE(strict.status().IsDataLoss()) << strict.status().ToString();
}

TEST_F(WalTest, BitFlippedFrameStopsTolerantReadAndFailsStrict) {
  AppendAll({"aaaa", "bbbb", "cccc"});
  std::string bytes = Slurp();
  // Flip a payload bit in the SECOND frame (offset: frame = 8 + 4 bytes).
  const size_t second_payload = (8 + 4) + 8;
  bytes[second_payload] = static_cast<char>(bytes[second_payload] ^ 0x01);
  Spit(bytes);

  auto tolerant = ReadWal(path_, WalReadMode::kTolerateTornTail);
  ASSERT_TRUE(tolerant.ok()) << tolerant.status().ToString();
  EXPECT_EQ(tolerant->records, std::vector<std::string>{"aaaa"});
  EXPECT_TRUE(tolerant->torn_tail);
  EXPECT_EQ(tolerant->valid_bytes, 12u);

  auto strict = ReadWal(path_, WalReadMode::kStrict);
  EXPECT_TRUE(strict.status().IsDataLoss()) << strict.status().ToString();
  EXPECT_NE(strict.status().message().find("checksum"), std::string::npos);
}

TEST_F(WalTest, ImplausibleFrameLengthIsDamageNotAllocation) {
  AppendAll({"good"});
  const std::string clean = Slurp();
  // Length field 0xFFFFFFFF: must be rejected by the cap, not allocated.
  Spit(clean + std::string("\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF", 8));
  auto tolerant = ReadWal(path_, WalReadMode::kTolerateTornTail);
  ASSERT_TRUE(tolerant.ok()) << tolerant.status().ToString();
  EXPECT_EQ(tolerant->records.size(), 1u);
  EXPECT_TRUE(tolerant->torn_tail);
  auto strict = ReadWal(path_, WalReadMode::kStrict);
  EXPECT_TRUE(strict.status().IsDataLoss()) << strict.status().ToString();
}

TEST_F(WalTest, TruncateCutsTornTailThenAppendsResume) {
  AppendAll({"r1", "r2"});
  const std::string clean = Slurp();
  Spit(clean + "torn!");
  auto tolerant = ReadWal(path_, WalReadMode::kTolerateTornTail);
  ASSERT_TRUE(tolerant.ok());
  ASSERT_TRUE(tolerant->torn_tail);
  ASSERT_TRUE(TruncateWal(path_, tolerant->valid_bytes).ok());

  // After the cut the log is strictly clean and appendable again.
  auto strict = ReadWal(path_, WalReadMode::kStrict);
  ASSERT_TRUE(strict.ok()) << strict.status().ToString();
  EXPECT_EQ(strict->records.size(), 2u);
  AppendAll({"r3"});
  auto final_read = ReadWal(path_, WalReadMode::kStrict);
  ASSERT_TRUE(final_read.ok());
  EXPECT_EQ(final_read->records,
            (std::vector<std::string>{"r1", "r2", "r3"}));
}

TEST_F(WalTest, TruncateRefusesToGrow) {
  AppendAll({"r1"});
  Status grow = TruncateWal(path_, Slurp().size() + 100);
  EXPECT_TRUE(grow.IsInvalidArgument()) << grow.ToString();
}

TEST_F(WalTest, DevFullAppendFailureIsIOError) {
  if (::access("/dev/full", W_OK) != 0) {
    GTEST_SKIP() << "/dev/full not available";
  }
  auto writer = WalWriter::Open("/dev/full");
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  Status append = (*writer)->Append(std::string(1 << 16, 'x'));
  EXPECT_TRUE(append.IsIOError()) << append.ToString();
}

}  // namespace
}  // namespace persist
}  // namespace longdp
