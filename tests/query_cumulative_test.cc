#include "query/cumulative_query.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/longitudinal_dataset.h"
#include "util/substream.h"

namespace longdp {
namespace query {
namespace {

data::LongitudinalDataset MakeStairs() {
  // 4 users; user i reports 1 in rounds 1..i+1 (weights 1..4 by t=4).
  auto ds = data::LongitudinalDataset::Create(4, 4).value();
  EXPECT_TRUE(ds.AppendRound({1, 1, 1, 1}).ok());
  EXPECT_TRUE(ds.AppendRound({0, 1, 1, 1}).ok());
  EXPECT_TRUE(ds.AppendRound({0, 0, 1, 1}).ok());
  EXPECT_TRUE(ds.AppendRound({0, 0, 0, 1}).ok());
  return ds;
}

TEST(CumulativeQueryTest, ThresholdZeroIsOne) {
  auto ds = MakeStairs();
  EXPECT_EQ(EvaluateCumulativeOnDataset(ds, 1, 0).value(), 1.0);
  EXPECT_EQ(EvaluateCumulativeOnDataset(ds, 4, 0).value(), 1.0);
}

TEST(CumulativeQueryTest, StairValues) {
  auto ds = MakeStairs();
  // Weights at t=4: (1, 2, 3, 4).
  EXPECT_DOUBLE_EQ(EvaluateCumulativeOnDataset(ds, 4, 1).value(), 1.0);
  EXPECT_DOUBLE_EQ(EvaluateCumulativeOnDataset(ds, 4, 2).value(), 0.75);
  EXPECT_DOUBLE_EQ(EvaluateCumulativeOnDataset(ds, 4, 3).value(), 0.5);
  EXPECT_DOUBLE_EQ(EvaluateCumulativeOnDataset(ds, 4, 4).value(), 0.25);
}

TEST(CumulativeQueryTest, MonotoneInTAntitoneInB) {
  util::SubstreamRng rng(1, util::substream::kGeneric);
  auto ds = data::BernoulliIid(400, 8, 0.3, &rng).value();
  for (int64_t b = 1; b <= 4; ++b) {
    double prev = 0.0;
    for (int64_t t = 1; t <= 8; ++t) {
      double v = EvaluateCumulativeOnDataset(ds, t, b).value();
      EXPECT_GE(v, prev) << "b=" << b << " t=" << t;
      prev = v;
    }
  }
  for (int64_t t = 1; t <= 8; ++t) {
    double prev = 1.0;
    for (int64_t b = 1; b <= 8; ++b) {
      double v = EvaluateCumulativeOnDataset(ds, t, b).value();
      EXPECT_LE(v, prev) << "b=" << b << " t=" << t;
      prev = v;
    }
  }
}

TEST(CumulativeQueryTest, RangeChecks) {
  auto ds = MakeStairs();
  EXPECT_FALSE(EvaluateCumulativeOnDataset(ds, 0, 1).ok());
  EXPECT_FALSE(EvaluateCumulativeOnDataset(ds, 5, 1).ok());
  EXPECT_FALSE(EvaluateCumulativeOnDataset(ds, 2, -1).ok());
  EXPECT_FALSE(EvaluateCumulativeOnDataset(ds, 2, 5).ok());
}

TEST(CumulativeQueryTest, AgreesWithCumulativeCounts) {
  util::SubstreamRng rng(2, util::substream::kGeneric);
  auto ds = data::BernoulliIid(300, 6, 0.5, &rng).value();
  for (int64_t t = 1; t <= 6; ++t) {
    auto counts = ds.CumulativeCounts(t).value();
    for (int64_t b = 0; b <= 6; ++b) {
      double expected = static_cast<double>(counts[static_cast<size_t>(b)]) /
                        300.0;
      EXPECT_DOUBLE_EQ(EvaluateCumulativeOnDataset(ds, t, b).value(),
                       expected);
    }
  }
}

TEST(CountOccExactTest, PaperReduction) {
  std::vector<int64_t> t2 = {100, 70, 40, 10};
  std::vector<int64_t> t1 = {100, 60, 20, 5};
  // CountOcc_=2 = thresholds_t2[2] - thresholds_t1[1] = 40 - 60 = -20
  // (formula as stated in the paper's Section 1.1).
  EXPECT_EQ(CountOccExactFromThresholds(t2, t1, 2).value(), -20);
  EXPECT_EQ(CountOccExactFromThresholds(t2, t2, 1).value(),
            70 - 100);
}

TEST(CountOccExactTest, Validation) {
  std::vector<int64_t> a = {10, 5};
  std::vector<int64_t> b = {10, 5, 2};
  EXPECT_FALSE(CountOccExactFromThresholds(a, b, 1).ok());
  EXPECT_FALSE(CountOccExactFromThresholds(a, a, 0).ok());
  EXPECT_FALSE(CountOccExactFromThresholds(a, a, 2).ok());
}

}  // namespace
}  // namespace query
}  // namespace longdp
