#include "query/debias.h"

#include <gtest/gtest.h>

#include <limits>

namespace longdp {
namespace query {
namespace {

PaddingSpec Spec(int k, int64_t npad, int64_t n) {
  PaddingSpec spec;
  spec.synth_width = k;
  spec.npad = npad;
  spec.true_n = n;
  return spec;
}

TEST(PaddingCountTest, FullWidthPredicate) {
  // Predicate over the full k=3 window matching 4 patterns: padding adds
  // npad per matching bin.
  auto pred = MakeAtLeastOnes(3, 2);  // 4 patterns
  EXPECT_EQ(PaddingCount(*pred, Spec(3, 10, 1000)).value(), 40);
}

TEST(PaddingCountTest, NarrowPredicateLifted) {
  // k'=2 predicate on a k=3 synthesizer: each matching 2-pattern extends to
  // 2^(3-2)=2 bins.
  auto pred = MakeAllOnes(2);  // 1 pattern
  EXPECT_EQ(PaddingCount(*pred, Spec(3, 10, 1000)).value(), 20);
}

TEST(PaddingCountTest, RejectsWiderPredicate) {
  auto pred = MakeAllOnes(4);
  EXPECT_TRUE(
      PaddingCount(*pred, Spec(3, 10, 1000)).status().IsInvalidArgument());
}

TEST(PaddingCountTest, RejectsBadSpec) {
  auto pred = MakeAllOnes(2);
  EXPECT_FALSE(PaddingCount(*pred, Spec(0, 10, 1000)).ok());
  EXPECT_FALSE(PaddingCount(*pred, Spec(3, -1, 1000)).ok());
  EXPECT_FALSE(PaddingCount(*pred, Spec(3, 10, 0)).ok());
}

TEST(DebiasedFractionTest, RemovesPaddingExactly) {
  auto pred = MakeAllOnes(3);  // 1 pattern -> padding npad
  // Synthetic count 150 with npad=50 padding: debiased = (150-50)/1000.
  EXPECT_DOUBLE_EQ(
      DebiasedFraction(150, *pred, Spec(3, 50, 1000)).value(), 0.1);
}

TEST(DebiasedFractionTest, CanGoNegative) {
  // Noise can push below the padding; the debiased estimate is allowed to
  // be negative (unbiasedness over clamping).
  auto pred = MakeAllOnes(3);
  EXPECT_LT(DebiasedFraction(30, *pred, Spec(3, 50, 1000)).value(), 0.0);
}

TEST(BiasedFractionTest, SimpleRatio) {
  EXPECT_DOUBLE_EQ(BiasedFraction(25, 100).value(), 0.25);
}

TEST(BiasedFractionTest, RejectsNonPositivePopulation) {
  // Used to silently answer 0.0 for an empty (or corrupted-negative)
  // synthetic population, indistinguishable from a real zero fraction.
  EXPECT_TRUE(BiasedFraction(25, 0).status().IsInvalidArgument());
  EXPECT_TRUE(BiasedFraction(25, -7).status().IsInvalidArgument());
}

TEST(PaddingCountTest, OverflowBoundaryIsExact) {
  // k=3 synthesizer, width-1 all-ones predicate: matching 2^(1-1)=1 pattern
  // lifted by 2^(3-1)=4 bins, so the padding count is npad * 4. The largest
  // npad that fits is INT64_MAX/4; one more must fail loudly instead of
  // wrapping.
  auto pred = MakeAllOnes(1);
  const int64_t fits = std::numeric_limits<int64_t>::max() / 4;
  EXPECT_EQ(PaddingCount(*pred, Spec(3, fits, 1000)).value(), fits * 4);
  EXPECT_TRUE(
      PaddingCount(*pred, Spec(3, fits + 1, 1000)).status().IsInvalidArgument());
}

TEST(PaddingValueTest, LinearQuerySumsWeights) {
  auto q = LinearWindowQuery::Create(2, {1.0, 0.5, 0.0, 2.0}).value();
  EXPECT_DOUBLE_EQ(PaddingValue(q, Spec(2, 10, 100)).value(), 35.0);
}

TEST(PaddingValueTest, RequiresFullWidth) {
  auto q = LinearWindowQuery::Create(2, {1, 0, 0, 1}).value();
  EXPECT_TRUE(PaddingValue(q, Spec(3, 10, 100)).status().IsInvalidArgument());
}

TEST(DebiasedLinearValueTest, RemovesPadding) {
  auto q = LinearWindowQuery::Create(2, {0, 1, 0, 1}).value();
  // padding value = 2 * npad = 20; (120 - 20)/100 = 1.0.
  EXPECT_DOUBLE_EQ(DebiasedLinearValue(120.0, q, Spec(2, 10, 100)).value(),
                   1.0);
}

TEST(DebiasConsistencyTest, PredicateAndLinearFormAgree) {
  // Debiasing a predicate and debiasing its indicator linear query give the
  // same result.
  auto pred = MakeAtLeastOnes(3, 2);
  auto q = LinearWindowQuery::FromPredicate(*pred, 3).value();
  auto spec = Spec(3, 25, 500);
  int64_t count = 240;
  double via_pred = DebiasedFraction(count, *pred, spec).value();
  double via_linear =
      DebiasedLinearValue(static_cast<double>(count), q, spec).value();
  EXPECT_DOUBLE_EQ(via_pred, via_linear);
}

}  // namespace
}  // namespace query
}  // namespace longdp
