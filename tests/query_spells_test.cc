#include "query/spells.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "util/substream.h"

namespace longdp {
namespace query {
namespace {

data::LongitudinalDataset MakePanel() {
  // u0: 1 1 0 1 1 1   spells {2, 3}
  // u1: 0 0 0 0 0 0   no spells
  // u2: 1 0 1 0 1 0   spells {1, 1, 1}
  // u3: 1 1 1 1 1 1   spell {6} (ongoing)
  auto ds = data::LongitudinalDataset::Create(4, 6).value();
  EXPECT_TRUE(ds.AppendRound({1, 0, 1, 1}).ok());
  EXPECT_TRUE(ds.AppendRound({1, 0, 0, 1}).ok());
  EXPECT_TRUE(ds.AppendRound({0, 0, 1, 1}).ok());
  EXPECT_TRUE(ds.AppendRound({1, 0, 0, 1}).ok());
  EXPECT_TRUE(ds.AppendRound({1, 0, 1, 1}).ok());
  EXPECT_TRUE(ds.AppendRound({1, 0, 0, 1}).ok());
  return ds;
}

TEST(SpellsTest, HistogramCountsMaximalRuns) {
  auto ds = MakePanel();
  auto hist = SpellLengthHistogram(ds, 6).value();
  // Lengths: u0 {2,3}, u2 {1,1,1}, u3 {6}.
  EXPECT_EQ(hist[1], 3);
  EXPECT_EQ(hist[2], 1);
  EXPECT_EQ(hist[3], 1);
  EXPECT_EQ(hist[4], 0);
  EXPECT_EQ(hist[6], 1);
}

TEST(SpellsTest, HistogramAtEarlierTime) {
  auto ds = MakePanel();
  auto hist = SpellLengthHistogram(ds, 3).value();
  // Through t=3: u0 has spell {2} (ended) only — bits 1,1,0.
  // u2: bits 1,0,1 -> spells {1, 1}. u3: bits 1,1,1 -> ongoing {3}.
  EXPECT_EQ(hist[1], 2);
  EXPECT_EQ(hist[2], 1);
  EXPECT_EQ(hist[3], 1);
}

TEST(SpellsTest, EverHadSpell) {
  auto ds = MakePanel();
  // min_len=2: u0 (spell 2), u3 -> 2/4.
  EXPECT_DOUBLE_EQ(EverHadSpell(ds, 6, 2).value(), 0.5);
  // min_len=1: u0, u2, u3 -> 3/4.
  EXPECT_DOUBLE_EQ(EverHadSpell(ds, 6, 1).value(), 0.75);
  // min_len=6: only u3.
  EXPECT_DOUBLE_EQ(EverHadSpell(ds, 6, 6).value(), 0.25);
  EXPECT_DOUBLE_EQ(EverHadSpell(ds, 6, 7).value(), 0.0);
}

TEST(SpellsTest, EverHadSpellMonotoneInT) {
  util::SubstreamRng rng(1, util::substream::kGeneric);
  auto ds = data::BernoulliIid(300, 10, 0.3, &rng).value();
  for (int64_t len = 1; len <= 4; ++len) {
    double prev = 0.0;
    for (int64_t t = 1; t <= 10; ++t) {
      double v = EverHadSpell(ds, t, len).value();
      EXPECT_GE(v, prev) << "t=" << t << " len=" << len;
      prev = v;
    }
  }
}

TEST(SpellsTest, OngoingSpellAtLeast) {
  auto ds = MakePanel();
  // At t=6: current runs are u0: 3, u1: 0, u2: 0 (bit 6 = 0), u3: 6.
  EXPECT_DOUBLE_EQ(OngoingSpellAtLeast(ds, 6, 3).value(), 0.5);
  EXPECT_DOUBLE_EQ(OngoingSpellAtLeast(ds, 6, 4).value(), 0.25);
  // At t=5: runs u0: 2, u2: 1, u3: 5.
  EXPECT_DOUBLE_EQ(OngoingSpellAtLeast(ds, 5, 1).value(), 0.75);
}

TEST(SpellsTest, MeanSpellLength) {
  auto ds = MakePanel();
  // Spells: 2,3,1,1,1,6 -> mean 14/6.
  EXPECT_NEAR(MeanSpellLength(ds, 6).value(), 14.0 / 6.0, 1e-12);
}

TEST(SpellsTest, NoSpellsMeansZero) {
  auto ds = data::ExtremeAllZeros(10, 4).value();
  EXPECT_EQ(MeanSpellLength(ds, 4).value(), 0.0);
  EXPECT_EQ(EverHadSpell(ds, 4, 1).value(), 0.0);
  auto hist = SpellLengthHistogram(ds, 4).value();
  for (int64_t c : hist) EXPECT_EQ(c, 0);
}

TEST(SpellsTest, Validation) {
  auto ds = MakePanel();
  EXPECT_FALSE(SpellLengthHistogram(ds, 0).ok());
  EXPECT_FALSE(SpellLengthHistogram(ds, 7).ok());
  EXPECT_FALSE(EverHadSpell(ds, 3, 0).ok());
  EXPECT_FALSE(OngoingSpellAtLeast(ds, 3, -1).ok());
}

TEST(SpellsTest, SpanFormMatchesDatasetForm) {
  // The span-of-RoundView primitives are the same word loops the dataset
  // wrappers forward to; answers must be identical on shared storage.
  util::SubstreamRng rng(3, util::substream::kGeneric);
  auto ds = data::BernoulliIid(150, 10, 0.5, &rng).value();
  std::vector<data::RoundView> rounds;
  for (int64_t t = 1; t <= ds.rounds(); ++t) rounds.push_back(ds.Round(t));
  const std::span<const data::RoundView> span(rounds);
  for (int64_t t : {1, 4, 10}) {
    EXPECT_EQ(SpellLengthHistogram(span, t).value(),
              SpellLengthHistogram(ds, t).value());
    EXPECT_EQ(MeanSpellLength(span, t).value(),
              MeanSpellLength(ds, t).value());
    for (int64_t len : {1, 2, 5}) {
      EXPECT_EQ(EverHadSpell(span, t, len).value(),
                EverHadSpell(ds, t, len).value());
      EXPECT_EQ(OngoingSpellAtLeast(span, t, len).value(),
                OngoingSpellAtLeast(ds, t, len).value());
    }
  }
}

TEST(SpellsTest, SpanFormRejectsMismatchedViewSizes) {
  auto a = data::ExtremeAllZeros(10, 2).value();
  auto b = data::ExtremeAllZeros(11, 2).value();
  std::vector<data::RoundView> rounds = {a.Round(1), b.Round(1)};
  const std::span<const data::RoundView> span(rounds);
  EXPECT_TRUE(SpellLengthHistogram(span, 2).status().IsInvalidArgument());
  EXPECT_TRUE(EverHadSpell(span, 2, 1).status().IsInvalidArgument());
}

TEST(SpellsTest, HistogramTotalsMatchPopulationWeight) {
  // Property: sum over lengths of (length * count) == total 1-bits.
  util::SubstreamRng rng(2, util::substream::kGeneric);
  auto ds = data::BernoulliIid(200, 12, 0.4, &rng).value();
  for (int64_t t : {1, 5, 12}) {
    auto hist = SpellLengthHistogram(ds, t).value();
    int64_t weighted = 0;
    for (size_t l = 0; l < hist.size(); ++l) {
      weighted += static_cast<int64_t>(l) * hist[l];
    }
    int64_t ones = 0;
    for (int64_t i = 0; i < ds.num_users(); ++i) {
      ones += ds.HammingWeight(i, t);
    }
    EXPECT_EQ(weighted, ones) << "t=" << t;
  }
}

}  // namespace
}  // namespace query
}  // namespace longdp
