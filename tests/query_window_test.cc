#include "query/window_query.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "util/substream.h"

namespace longdp {
namespace query {
namespace {

TEST(PredicateTest, PatternEquals) {
  auto pred = MakePatternEquals(0b101, 3);
  EXPECT_EQ(pred->width(), 3);
  EXPECT_TRUE(pred->Matches(0b101));
  EXPECT_FALSE(pred->Matches(0b100));
  EXPECT_EQ(pred->MatchingPatternCount(), 1);
  EXPECT_EQ(pred->name(), "pattern=101");
}

TEST(PredicateTest, AtLeastOnesCounts) {
  auto pred = MakeAtLeastOnes(3, 2);
  // Patterns with >= 2 ones among 3 bits: 011,101,110,111 -> 4.
  EXPECT_EQ(pred->MatchingPatternCount(), 4);
  EXPECT_TRUE(pred->Matches(0b110));
  EXPECT_FALSE(pred->Matches(0b100));
}

TEST(PredicateTest, ConsecutiveOnesCounts) {
  auto pred = MakeConsecutiveOnes(3, 2);
  // Patterns with >= 2 consecutive ones: 011, 110, 111 -> 3.
  EXPECT_EQ(pred->MatchingPatternCount(), 3);
  EXPECT_TRUE(pred->Matches(0b011));
  EXPECT_FALSE(pred->Matches(0b101));
}

TEST(PredicateTest, AllOnes) {
  auto pred = MakeAllOnes(3);
  EXPECT_EQ(pred->MatchingPatternCount(), 1);
  EXPECT_TRUE(pred->Matches(0b111));
  EXPECT_FALSE(pred->Matches(0b110));
}

TEST(PredicateTest, CustomPredicate) {
  auto pred = MakeCustomPredicate(2, "newest-is-1", [](util::Pattern p) {
    return (p & 1) == 1;
  });
  EXPECT_EQ(pred->MatchingPatternCount(), 2);
  EXPECT_EQ(pred->name(), "newest-is-1");
}

TEST(EvaluateOnDatasetTest, SimpleCounts) {
  // 3 users x 3 rounds: u0 = 111, u1 = 010, u2 = 011.
  auto ds = data::LongitudinalDataset::Create(3, 3).value();
  ASSERT_TRUE(ds.AppendRound({1, 0, 0}).ok());
  ASSERT_TRUE(ds.AppendRound({1, 1, 1}).ok());
  ASSERT_TRUE(ds.AppendRound({1, 0, 1}).ok());
  auto at_least_2 = MakeAtLeastOnes(3, 2);
  EXPECT_NEAR(EvaluateOnDataset(*at_least_2, ds, 3).value(), 2.0 / 3.0,
              1e-12);
  auto all = MakeAllOnes(3);
  EXPECT_NEAR(EvaluateOnDataset(*all, ds, 3).value(), 1.0 / 3.0, 1e-12);
}

TEST(EvaluateOnDatasetTest, RangeChecks) {
  auto ds = data::LongitudinalDataset::Create(2, 3).value();
  ASSERT_TRUE(ds.AppendRound({1, 0}).ok());
  auto pred = MakeAllOnes(2);
  EXPECT_FALSE(EvaluateOnDataset(*pred, ds, 0).ok());
  EXPECT_FALSE(EvaluateOnDataset(*pred, ds, 2).ok());  // only 1 round so far
  EXPECT_TRUE(EvaluateOnDataset(*pred, ds, 1).ok());
}

TEST(CountOnHistogramTest, LiftsNarrowPredicates) {
  // Histogram over k=3, predicate over k'=2 (suffix): count bins whose low
  // 2 bits match.
  std::vector<int64_t> hist(8, 0);
  hist[0b011] = 5;  // suffix 11
  hist[0b111] = 2;  // suffix 11
  hist[0b001] = 7;  // suffix 01
  auto pred = MakeAllOnes(2);  // suffix 11
  EXPECT_EQ(CountOnHistogram(*pred, hist, 3).value(), 7);
}

TEST(CountOnHistogramTest, RejectsWiderPredicate) {
  std::vector<int64_t> hist(4, 0);
  auto pred = MakeAllOnes(3);
  EXPECT_TRUE(CountOnHistogram(*pred, hist, 2).status().IsInvalidArgument());
}

TEST(CountOnHistogramTest, RejectsWrongSize) {
  std::vector<int64_t> hist(5, 0);
  auto pred = MakeAllOnes(2);
  EXPECT_TRUE(CountOnHistogram(*pred, hist, 2).status().IsInvalidArgument());
}

TEST(LinearQueryTest, CreateValidates) {
  EXPECT_FALSE(LinearWindowQuery::Create(2, {1.0, 0.0}).ok());
  EXPECT_TRUE(LinearWindowQuery::Create(2, {1, 0, 0, 0.5}).ok());
}

TEST(LinearQueryTest, FromPredicateBuildsIndicatorWeights) {
  auto pred = MakeAtLeastOnes(2, 2);  // only pattern 11
  auto q = LinearWindowQuery::FromPredicate(*pred, 3).value();
  // Lifted to k=3: bins with suffix 11 are 011 and 111.
  double sum = 0.0;
  for (double w : q.weights()) sum += w;
  EXPECT_EQ(sum, 2.0);
  EXPECT_EQ(q.weights()[0b011], 1.0);
  EXPECT_EQ(q.weights()[0b111], 1.0);
  EXPECT_EQ(q.weights()[0b110], 0.0);
}

TEST(LinearQueryTest, EvaluateOnHistogram) {
  auto q = LinearWindowQuery::Create(2, {0.0, 1.0, 2.0, 3.0}).value();
  std::vector<int64_t> hist = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(q.EvaluateOnHistogram(hist).value(),
                   20.0 + 60.0 + 120.0);
  EXPECT_FALSE(q.EvaluateOnHistogram({1, 2}).ok());
}

TEST(LinearQueryTest, WeightNorm) {
  auto q = LinearWindowQuery::Create(2, {3.0, 4.0, 0.0, 0.0}).value();
  EXPECT_DOUBLE_EQ(q.WeightL2Norm(), 5.0);
}

TEST(LinearQueryTest, DatasetAndHistogramAgree) {
  util::SubstreamRng rng(3, util::substream::kGeneric);
  auto ds = data::BernoulliIid(500, 6, 0.4, &rng).value();
  auto q = LinearWindowQuery::Create(
               3, {0.5, 0, 1, 0, 2, 0, 0, 1.5})
               .value();
  auto hist = ds.WindowHistogram(6, 3).value();
  double via_hist =
      q.EvaluateOnHistogram(hist).value() / static_cast<double>(500);
  double via_ds = q.EvaluateOnDataset(ds, 6).value();
  EXPECT_NEAR(via_hist, via_ds, 1e-12);
}

// Property sweep: predicate counts computed from the histogram always match
// direct dataset evaluation, for every predicate family and time.
class WindowQueryPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(WindowQueryPropertyTest, HistogramAndDatasetAgree) {
  const int k = GetParam();
  util::SubstreamRng rng(100 + static_cast<uint64_t>(k), util::substream::kGeneric);
  const int64_t kN = 300, kT = 9;
  auto ds = data::BernoulliIid(kN, kT, 0.35, &rng).value();
  std::vector<WindowPredicatePtr> preds;
  for (int m = 0; m <= k; ++m) preds.push_back(MakeAtLeastOnes(k, m));
  for (int run = 1; run <= k; ++run) {
    preds.push_back(MakeConsecutiveOnes(k, run));
  }
  for (int64_t t = k; t <= kT; ++t) {
    auto hist = ds.WindowHistogram(t, k).value();
    for (const auto& pred : preds) {
      double direct = EvaluateOnDataset(*pred, ds, t).value();
      double via_hist =
          static_cast<double>(CountOnHistogram(*pred, hist, k).value()) /
          static_cast<double>(kN);
      EXPECT_NEAR(direct, via_hist, 1e-12)
          << "k=" << k << " t=" << t << " pred=" << pred->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, WindowQueryPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace query
}  // namespace longdp
