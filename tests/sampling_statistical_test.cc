// Statistical acceptance tests for the sampling primitives. The paper's
// utility analysis assumes stage 2's selections are UNIFORM — goldens pin
// the exact seeded sequence and the zero-noise suite pins counts, but
// neither would notice a faster sampler that is subtly biased (a wrong
// Lemire threshold, an off-by-one shuffle bound). These tests close that
// gap with chi-squared goodness-of-fit checks at fixed seeds and generous
// alpha, so they are deterministic for CI yet sensitive to any gross
// non-uniformity.
//
// Thresholds: for df degrees of freedom the chi-squared statistic has mean
// df and variance 2*df; every test gates at df + 6*sqrt(2*df), far beyond
// the ~1e-9 one-sided tail, so a failure means a real defect, not an
// unlucky seed.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "util/batch_sampler.h"
#include "util/rng.h"

namespace longdp {
namespace util {
namespace {

double Chi2Threshold(double df) { return df + 6.0 * std::sqrt(2.0 * df); }

double Chi2Uniform(const std::vector<int64_t>& observed, double expected) {
  double chi2 = 0.0;
  for (int64_t o : observed) {
    const double d = static_cast<double>(o) - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

TEST(SamplingStatisticalTest, BoundedBulkIsUniform) {
  // Non-power-of-two bounds are the ones a broken rejection threshold
  // skews; 2^32 + 1 additionally exercises the high-word/low-word split of
  // the multiply-shift (binned mod a small prime).
  struct Case {
    uint64_t bound;
    uint64_t seed;
  };
  for (const Case& c : {Case{7, 101}, Case{1000, 102}, Case{12289, 103}}) {
    const size_t kDraws = 400000;
    Rng rng(c.seed);
    BatchSampler sampler(&rng);
    std::vector<uint64_t> draws(kDraws);
    sampler.BoundedBulk(c.bound, draws.data(), kDraws);
    std::vector<int64_t> hist(c.bound, 0);
    for (uint64_t v : draws) {
      ASSERT_LT(v, c.bound);
      ++hist[static_cast<size_t>(v)];
    }
    const double expected =
        static_cast<double>(kDraws) / static_cast<double>(c.bound);
    const double df = static_cast<double>(c.bound - 1);
    EXPECT_LT(Chi2Uniform(hist, expected), Chi2Threshold(df))
        << "bound=" << c.bound;
  }
}

TEST(SamplingStatisticalTest, BoundedBulkLargeBoundResiduesUniform) {
  const uint64_t kBound = (uint64_t{1} << 32) + 1;
  const uint64_t kBins = 127;
  const size_t kDraws = 400000;
  Rng rng(104);
  BatchSampler sampler(&rng);
  std::vector<uint64_t> draws(kDraws);
  sampler.BoundedBulk(kBound, draws.data(), kDraws);
  std::vector<int64_t> hist(kBins, 0);
  for (uint64_t v : draws) {
    ASSERT_LT(v, kBound);
    ++hist[static_cast<size_t>(v % kBins)];
  }
  // kBound mod kBins != 0 introduces a relative depth skew of ~kBins/kBound
  // (< 3e-8), far below the chi-squared floor at this sample size.
  const double expected =
      static_cast<double>(kDraws) / static_cast<double>(kBins);
  EXPECT_LT(Chi2Uniform(hist, expected),
            Chi2Threshold(static_cast<double>(kBins - 1)));
}

TEST(SamplingStatisticalTest, SingleBoundedMatchesBulkDistribution) {
  // The single-draw path shares the conversion but not the prefetch loop;
  // check it independently.
  const uint64_t kBound = 1000;
  const size_t kDraws = 300000;
  Rng rng(105);
  BatchSampler sampler(&rng);
  std::vector<int64_t> hist(kBound, 0);
  for (size_t i = 0; i < kDraws; ++i) {
    ++hist[static_cast<size_t>(sampler.Bounded(kBound))];
  }
  const double expected =
      static_cast<double>(kDraws) / static_cast<double>(kBound);
  EXPECT_LT(Chi2Uniform(hist, expected),
            Chi2Threshold(static_cast<double>(kBound - 1)));
}

TEST(SamplingStatisticalTest, PartialShufflePositionOccupancyUniform) {
  // After PartialShuffle(n, k), each of the k prefix positions must be
  // occupied by every element with probability 1/n. This is the property
  // stage 2 actually consumes: position p holding element e uniformly is
  // what makes the promoted subsets (and their order) unbiased.
  const int64_t kN = 12, kK = 4;
  const int kTrials = 120000;
  Rng rng(106);
  BatchSampler sampler(&rng);
  std::vector<std::vector<int64_t>> occupancy(
      static_cast<size_t>(kK), std::vector<int64_t>(static_cast<size_t>(kN), 0));
  std::vector<int64_t> v(static_cast<size_t>(kN));
  for (int trial = 0; trial < kTrials; ++trial) {
    std::iota(v.begin(), v.end(), 0);
    sampler.PartialShuffle(v.data(), kN, kK);
    for (int64_t p = 0; p < kK; ++p) {
      ++occupancy[static_cast<size_t>(p)]
                 [static_cast<size_t>(v[static_cast<size_t>(p)])];
    }
  }
  const double expected =
      static_cast<double>(kTrials) / static_cast<double>(kN);
  for (int64_t p = 0; p < kK; ++p) {
    EXPECT_LT(Chi2Uniform(occupancy[static_cast<size_t>(p)], expected),
              Chi2Threshold(static_cast<double>(kN - 1)))
        << "position " << p;
  }
}

TEST(SamplingStatisticalTest, PartialShufflePrefixInclusionUniform) {
  // Element-level inclusion: each element lands in the selected prefix
  // with probability k/n, including at the k == n-1 near-full edge.
  for (int64_t kK : {3LL, 11LL}) {
    const int64_t kN = 12;
    const int kTrials = 120000;
    Rng rng(107 + static_cast<uint64_t>(kK));
    BatchSampler sampler(&rng);
    std::vector<int64_t> included(static_cast<size_t>(kN), 0);
    std::vector<int64_t> v(static_cast<size_t>(kN));
    for (int trial = 0; trial < kTrials; ++trial) {
      std::iota(v.begin(), v.end(), 0);
      sampler.PartialShuffle(v.data(), kN, kK);
      for (int64_t p = 0; p < kK; ++p) {
        ++included[static_cast<size_t>(v[static_cast<size_t>(p)])];
      }
    }
    // Inclusion counts are negatively correlated across elements, which
    // only shrinks the chi-squared statistic; the threshold stays valid.
    const double expected = static_cast<double>(kTrials) *
                            static_cast<double>(kK) /
                            static_cast<double>(kN);
    EXPECT_LT(Chi2Uniform(included, expected),
              Chi2Threshold(static_cast<double>(kN - 1)))
        << "k=" << kK;
  }
}

TEST(SamplingStatisticalTest, SampleWithoutReplacementInclusionDense) {
  // Dense branch (count * 3 >= universe): partial Fisher-Yates. Every
  // element's inclusion probability must be count/universe.
  const size_t kUniverse = 20, kCount = 10;
  const int kTrials = 80000;
  Rng rng(108);
  std::vector<int64_t> included(kUniverse, 0);
  for (int trial = 0; trial < kTrials; ++trial) {
    for (size_t idx : rng.SampleWithoutReplacement(kUniverse, kCount)) {
      ++included[idx];
    }
  }
  const double expected = static_cast<double>(kTrials) *
                          static_cast<double>(kCount) /
                          static_cast<double>(kUniverse);
  EXPECT_LT(Chi2Uniform(included, expected),
            Chi2Threshold(static_cast<double>(kUniverse - 1)));
}

TEST(SamplingStatisticalTest, SampleWithoutReplacementInclusionSparse) {
  // Sparse branch (Floyd's algorithm): same inclusion-probability law.
  const size_t kUniverse = 300, kCount = 5;
  const int kTrials = 120000;
  Rng rng(109);
  std::vector<int64_t> included(kUniverse, 0);
  for (int trial = 0; trial < kTrials; ++trial) {
    for (size_t idx : rng.SampleWithoutReplacement(kUniverse, kCount)) {
      ++included[idx];
    }
  }
  const double expected = static_cast<double>(kTrials) *
                          static_cast<double>(kCount) /
                          static_cast<double>(kUniverse);
  EXPECT_LT(Chi2Uniform(included, expected),
            Chi2Threshold(static_cast<double>(kUniverse - 1)));
}

}  // namespace
}  // namespace util
}  // namespace longdp
