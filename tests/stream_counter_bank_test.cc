#include "stream/counter_bank.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "stream/budget_split.h"
#include "stream/counter_factory.h"
#include "util/substream.h"

namespace longdp {
namespace stream {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

CounterBank::Options MakeOptions(int64_t horizon, int64_t population,
                                 double rho, uint64_t seed = 0) {
  CounterBank::Options options;
  options.horizon = horizon;
  options.population = population;
  options.total_rho = rho;
  options.seed = seed;
  return options;
}

TEST(BudgetSplitTest, UniformSumsToTotal) {
  auto r = SplitBudget(BudgetSplit::kUniform, 12, 0.005);
  ASSERT_TRUE(r.ok());
  double sum = 0.0;
  for (double s : r.value()) sum += s;
  EXPECT_DOUBLE_EQ(sum, 0.005);
  EXPECT_EQ(r.value().size(), 12u);
}

TEST(BudgetSplitTest, CubicLogSumsToTotalAndFavorsLongStreams) {
  auto r = SplitBudget(BudgetSplit::kCubicLogLevels, 12, 0.005);
  ASSERT_TRUE(r.ok());
  const auto& shares = r.value();
  double sum = 0.0;
  for (double s : shares) sum += s;
  EXPECT_DOUBLE_EQ(sum, 0.005);
  // Counter b=1 runs over the longest stream (T steps) and must receive at
  // least as much budget as b=T (stream length 1).
  EXPECT_GT(shares.front(), shares.back());
}

TEST(BudgetSplitTest, CubicLogWeightsMatchFormula) {
  const int64_t kT = 12;
  auto r = SplitBudget(BudgetSplit::kCubicLogLevels, kT, 1.0);
  ASSERT_TRUE(r.ok());
  double denom = 0.0;
  std::vector<double> l3(static_cast<size_t>(kT));
  for (int64_t b = 1; b <= kT; ++b) {
    double l = static_cast<double>(LevelsForThreshold(kT, b));
    l3[static_cast<size_t>(b - 1)] = l * l * l;
    denom += l3[static_cast<size_t>(b - 1)];
  }
  for (int64_t b = 1; b <= kT; ++b) {
    EXPECT_NEAR(r.value()[static_cast<size_t>(b - 1)],
                l3[static_cast<size_t>(b - 1)] / denom, 1e-9)
        << "b=" << b;
  }
}

TEST(BudgetSplitTest, LevelsForThreshold) {
  // T=12: b=1 -> len 12 -> ceil(log2 12)=4; b=11 -> len 2 -> 1; b=12 -> 1.
  EXPECT_EQ(LevelsForThreshold(12, 1), 4);
  EXPECT_EQ(LevelsForThreshold(12, 5), 3);
  EXPECT_EQ(LevelsForThreshold(12, 11), 1);
  EXPECT_EQ(LevelsForThreshold(12, 12), 1);
}

TEST(BudgetSplitTest, RejectsBadArgs) {
  EXPECT_FALSE(SplitBudget(BudgetSplit::kUniform, 0, 1.0).ok());
  EXPECT_FALSE(SplitBudget(BudgetSplit::kUniform, 5, 0.0).ok());
}

TEST(BudgetSplitTest, InfiniteBudgetAllInfinite) {
  auto r = SplitBudget(BudgetSplit::kUniform, 3, kInf);
  ASSERT_TRUE(r.ok());
  for (double s : r.value()) EXPECT_EQ(s, kInf);
}

TEST(BudgetSplitTest, NamesRoundTrip) {
  EXPECT_EQ(BudgetSplitFromName("uniform").value(), BudgetSplit::kUniform);
  EXPECT_EQ(BudgetSplitFromName("cubic-log").value(),
            BudgetSplit::kCubicLogLevels);
  EXPECT_FALSE(BudgetSplitFromName("nope").ok());
  EXPECT_STREQ(BudgetSplitName(BudgetSplit::kUniform), "uniform");
}

TEST(CounterBankTest, CreateValidates) {
  EXPECT_FALSE(CounterBank::Create(MakeOptions(0, 10, 1.0)).ok());
  EXPECT_FALSE(CounterBank::Create(MakeOptions(5, -1, 1.0)).ok());
  EXPECT_FALSE(CounterBank::Create(MakeOptions(5, 10, 0.0)).ok());
  EXPECT_TRUE(CounterBank::Create(MakeOptions(5, 10, 1.0)).ok());
}

TEST(CounterBankTest, ChargesAccountantExactly) {
  dp::ZCdpAccountant accountant(0.005);
  auto bank = CounterBank::Create(MakeOptions(12, 100, 0.005), &accountant);
  ASSERT_TRUE(bank.ok());
  EXPECT_NEAR(accountant.spent(), 0.005, 1e-12);
  EXPECT_EQ(accountant.ledger().size(), 12u);
}

TEST(CounterBankTest, ZeroNoiseReproducesTrueThresholds) {
  // Five users gaining weight at different rates; with infinite budget the
  // monotonized rows equal the true S^t_b exactly.
  const int64_t kT = 6, kN = 5;
  auto bank = CounterBank::Create(MakeOptions(kT, kN, kInf));
  ASSERT_TRUE(bank.ok());
  // User i reports 1 in rounds 1..i (i.e. z^t counts users with new weight).
  std::vector<int64_t> weight(kN, 0);
  for (int64_t t = 1; t <= kT; ++t) {
    std::vector<int64_t> z(kT, 0);
    std::vector<int64_t> true_s(kT + 1, 0);
    for (int64_t i = 0; i < kN; ++i) {
      bool bit = t <= (i + 1);  // user i contributes 1 for rounds 1..i+1
      if (bit) {
        ++z[weight[i]];
        ++weight[i];
      }
    }
    true_s[0] = kN;
    for (int64_t b = 1; b <= kT; ++b) {
      int64_t c = 0;
      for (int64_t i = 0; i < kN; ++i) {
        if (weight[i] >= b) ++c;
      }
      true_s[b] = c;
    }
    auto row = bank.value()->ObserveRound(z);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(row.value(), true_s) << "t=" << t;
  }
}

TEST(CounterBankTest, MonotonizationInvariants) {
  // With real noise, the released rows satisfy both Lemma 4.2 clamps:
  // row_t[b] >= row_{t-1}[b] and row_t[b] <= row_{t-1}[b-1].
  const int64_t kT = 12, kN = 500;
  auto bank = CounterBank::Create(MakeOptions(kT, kN, 0.01));
  ASSERT_TRUE(bank.ok());
  std::vector<int64_t> prev(kT + 1, 0);
  prev[0] = kN;
  for (int64_t t = 1; t <= kT; ++t) {
    std::vector<int64_t> z(kT, 0);
    z[static_cast<size_t>(t - 1)] = 30;  // 30 users reach weight t each round
    auto row = bank.value()->ObserveRound(z);
    ASSERT_TRUE(row.ok());
    const auto& r = row.value();
    EXPECT_EQ(r[0], kN);
    for (int64_t b = 1; b <= kT; ++b) {
      EXPECT_GE(r[b], prev[b]) << "t=" << t << " b=" << b;
      EXPECT_LE(r[b], prev[b - 1]) << "t=" << t << " b=" << b;
    }
    prev = r;
  }
}

TEST(CounterBankTest, ImpossibleThresholdsStayZero) {
  // At time t, nobody can have weight > t; monotonization must pin those
  // entries at zero regardless of noise.
  const int64_t kT = 10, kN = 1000;
  auto bank = CounterBank::Create(MakeOptions(kT, kN, 0.005));
  ASSERT_TRUE(bank.ok());
  for (int64_t t = 1; t <= kT; ++t) {
    std::vector<int64_t> z(kT, 0);
    z[0] = (t == 1) ? 100 : 0;
    auto row = bank.value()->ObserveRound(z);
    ASSERT_TRUE(row.ok());
    for (int64_t b = t + 1; b <= kT; ++b) {
      EXPECT_EQ(row.value()[static_cast<size_t>(b)], 0)
          << "t=" << t << " b=" << b;
    }
  }
}

TEST(CounterBankTest, Lemma42ErrorDomination) {
  // Property check of Lemma 4.2: the monotonized error never exceeds the
  // max of the raw error at (t, b) and the monotonized errors at
  // (t-1, b) and (t-1, b-1).
  const int64_t kT = 12, kN = 2000;
  util::SubstreamRng rng(5, util::substream::kGeneric);
  for (int trial = 0; trial < 20; ++trial) {
    auto bank = CounterBank::Create(
        MakeOptions(kT, kN, 0.02, static_cast<uint64_t>(trial)));
    ASSERT_TRUE(bank.ok());
    // Random true trajectory.
    std::vector<int64_t> weight(kN, 0);
    std::vector<double> prev_err(kT + 1, 0.0);
    for (int64_t t = 1; t <= kT; ++t) {
      std::vector<int64_t> z(kT, 0);
      for (int64_t i = 0; i < kN; ++i) {
        if (weight[i] < t && rng.Bernoulli(0.2)) {
          ++z[weight[i]];
          ++weight[i];
        }
      }
      auto row = bank.value()->ObserveRound(z);
      ASSERT_TRUE(row.ok());
      const auto& mono = row.value();
      const auto& raw = bank.value()->raw_row();
      std::vector<double> cur_err(kT + 1, 0.0);
      for (int64_t b = 1; b <= std::min(t, kT); ++b) {
        int64_t true_s = 0;
        for (int64_t i = 0; i < kN; ++i) {
          if (weight[i] >= b) ++true_s;
        }
        double mono_err = std::fabs(static_cast<double>(mono[b] - true_s));
        double raw_err = std::fabs(static_cast<double>(raw[b] - true_s));
        double dominator =
            std::max({raw_err, prev_err[b], prev_err[b - 1]});
        EXPECT_LE(mono_err, dominator + 1e-9)
            << "t=" << t << " b=" << b << " trial=" << trial;
        cur_err[b] = mono_err;
      }
      prev_err = cur_err;
    }
  }
}

TEST(CounterBankTest, RejectsNonzeroFutureIncrements) {
  auto bank = CounterBank::Create(MakeOptions(5, 10, kInf));
  ASSERT_TRUE(bank.ok());
  std::vector<int64_t> z(5, 0);
  z[3] = 1;  // weight-4 increment at t=1 is impossible
  EXPECT_TRUE(
      bank.value()->ObserveRound(z).status().IsInvalidArgument());
}

TEST(CounterBankTest, RejectsWrongArity) {
  auto bank = CounterBank::Create(MakeOptions(5, 10, kInf));
  ASSERT_TRUE(bank.ok());
  std::vector<int64_t> z(4, 0);
  EXPECT_TRUE(
      bank.value()->ObserveRound(z).status().IsInvalidArgument());
}

TEST(CounterBankTest, RejectsPastHorizon) {
  auto bank = CounterBank::Create(MakeOptions(2, 10, kInf));
  ASSERT_TRUE(bank.ok());
  std::vector<int64_t> z(2, 0);
  ASSERT_TRUE(bank.value()->ObserveRound(z).ok());
  ASSERT_TRUE(bank.value()->ObserveRound(z).ok());
  EXPECT_TRUE(bank.value()->ObserveRound(z).status().IsOutOfRange());
}

TEST(CounterBankTest, SupportsAlternativeCounterFactories) {
  auto options = MakeOptions(8, 100, 0.1);
  options.factory = MakeCounterFactory("honaker").value();
  auto bank = CounterBank::Create(options);
  ASSERT_TRUE(bank.ok());
  std::vector<int64_t> z(8, 0);
  z[0] = 10;
  EXPECT_TRUE(bank.value()->ObserveRound(z).ok());
}

}  // namespace
}  // namespace stream
}  // namespace longdp
