// Cross-implementation tests: every registered stream counter must satisfy
// the StreamCounter contract. TEST_P sweeps the registry.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "stream/counter_factory.h"
#include "stream/honaker_counter.h"
#include "stream/laplace_tree_counter.h"
#include "stream/matrix_counter.h"
#include "stream/naive_counters.h"
#include "stream/tree_counter.h"
#include "util/mathutil.h"
#include "util/substream.h"

namespace longdp {
namespace stream {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// A keyed noise substream for a counter under test; distinct `i` gives an
// independent noise path.
util::SubstreamRng NoiseStream(uint64_t i) {
  return util::SubstreamRng(0xC0F3EE + i, util::substream::kCounterNoise);
}

class CounterContractTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<StreamCounter> Make(int64_t horizon, double rho,
                                      uint64_t stream_id = 0) {
    auto f = MakeCounterFactory(GetParam());
    EXPECT_TRUE(f.ok());
    auto c = f.value()->Create(horizon, rho, NoiseStream(stream_id));
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return std::move(c).value();
  }
};

TEST_P(CounterContractTest, NameMatchesRegistry) {
  auto counter = Make(8, 1.0);
  EXPECT_EQ(counter->name(), GetParam());
}

TEST_P(CounterContractTest, ZeroNoiseIsExact) {
  auto counter = Make(40, kInf);
  int64_t truth = 0;
  for (int64_t t = 1; t <= 40; ++t) {
    int64_t z = (t * 7) % 4;
    truth += z;
    auto r = counter->Observe(z);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), truth) << "t=" << t;
  }
}

TEST_P(CounterContractTest, TracksStepsAndHorizon) {
  auto counter = Make(5, 1.0);
  EXPECT_EQ(counter->steps(), 0);
  EXPECT_EQ(counter->horizon(), 5);
  ASSERT_TRUE(counter->Observe(1).ok());
  EXPECT_EQ(counter->steps(), 1);
}

TEST_P(CounterContractTest, RejectsPastHorizon) {
  auto counter = Make(2, 1.0);
  ASSERT_TRUE(counter->Observe(0).ok());
  ASSERT_TRUE(counter->Observe(0).ok());
  EXPECT_TRUE(counter->Observe(0).status().IsOutOfRange());
}

TEST_P(CounterContractTest, ReportsConfiguredRho) {
  auto counter = Make(8, 0.25);
  EXPECT_DOUBLE_EQ(counter->rho(), 0.25);
}

TEST_P(CounterContractTest, ErrorBoundIsMonotoneInBeta) {
  auto counter = Make(16, 0.1);
  // Smaller beta -> larger bound.
  EXPECT_GE(counter->ErrorBound(0.01, 7), counter->ErrorBound(0.1, 7));
  EXPECT_GE(counter->ErrorBound(0.1, 7), 0.0);
}

TEST_P(CounterContractTest, EmpiricalErrorWithinBound) {
  const int64_t kT = 16;
  const double kRho = 0.5;
  const double kBeta = 0.05;
  const int kTrials = 300;
  util::SubstreamRng rng(5, util::substream::kGeneric);
  int violations = 0, checks = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto counter = Make(kT, kRho, static_cast<uint64_t>(trial));
    int64_t truth = 0;
    for (int64_t t = 1; t <= kT; ++t) {
      int64_t z = static_cast<int64_t>(rng.UniformInt(3));
      truth += z;
      auto r = counter->Observe(z);
      ASSERT_TRUE(r.ok());
      if (std::fabs(static_cast<double>(r.value() - truth)) >
          counter->ErrorBound(kBeta, t)) {
        ++violations;
      }
      ++checks;
    }
  }
  EXPECT_LT(static_cast<double>(violations) / checks, kBeta * 1.5 + 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    AllCounters, CounterContractTest,
    ::testing::ValuesIn(RegisteredCounterNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(CounterFactoryTest, UnknownNameIsNotFound) {
  EXPECT_TRUE(MakeCounterFactory("bogus").status().IsNotFound());
}

TEST(CounterFactoryTest, RegistryListsAllImplementations) {
  EXPECT_EQ(RegisteredCounterNames().size(), 6u);
  for (const auto& name : RegisteredCounterNames()) {
    EXPECT_TRUE(MakeCounterFactory(name).ok()) << name;
  }
}

TEST(LaplaceTreeCounterTest, PureDpCalibration) {
  // epsilon = sqrt(2 rho); per-node scale = L / epsilon.
  LaplaceTreeCounter c(12, 0.02, NoiseStream(0));
  EXPECT_NEAR(c.epsilon(), 0.2, 1e-12);
  EXPECT_EQ(c.levels(), 4);
  EXPECT_NEAR(c.node_scale(), 4.0 / 0.2, 1e-12);
}

TEST(LaplaceTreeCounterTest, HeavierTailsThanGaussianTree) {
  // At equal rho the Laplace tree's noise variance per node,
  // 2 e^{1/s}/(e^{1/s}-1)^2 ~ 2 s^2 = 2 L^2 / (2 rho) = L^2/rho, exceeds
  // the Gaussian tree's L/(2 rho) for L >= 1; check empirically at the
  // final step.
  const int64_t kT = 16;
  const double kRho = 0.125;
  const int kTrials = 1500;
  util::MomentAccumulator gaussian_err, laplace_err;
  for (int trial = 0; trial < kTrials; ++trial) {
    const uint64_t id = static_cast<uint64_t>(trial);
    auto g = TreeCounterFactory().Create(kT, kRho, NoiseStream(id)).value();
    auto l = LaplaceTreeCounterFactory()
                 .Create(kT, kRho, NoiseStream(id + 100000))
                 .value();
    int64_t truth = 0;
    int64_t rg = 0, rl = 0;
    for (int64_t t = 1; t <= 15; ++t) {
      truth += 2;
      rg = g->Observe(2).value();
      rl = l->Observe(2).value();
    }
    gaussian_err.Add(static_cast<double>(rg - truth));
    laplace_err.Add(static_cast<double>(rl - truth));
  }
  EXPECT_GT(laplace_err.variance(), gaussian_err.variance());
}

TEST(HonakerCounterTest, RefinedVarianceBeatsPlainTree) {
  // Level-j refined variance must be strictly below the raw node variance
  // for every internal level.
  HonakerCounter c(64, 0.1, NoiseStream(0));
  double raw = c.LevelVariance(0);
  for (int j = 1; j < 6; ++j) {
    EXPECT_LT(c.LevelVariance(j), raw) << "level " << j;
  }
}

TEST(HonakerCounterTest, EmpiricallyTighterThanTree) {
  // With the same budget, Honaker's final-step error variance should not
  // exceed the plain tree's (it combines strictly more information).
  const int64_t kT = 32;
  const double kRho = 0.25;
  const int kTrials = 3000;
  util::MomentAccumulator tree_err, honaker_err;
  for (int trial = 0; trial < kTrials; ++trial) {
    const uint64_t id = static_cast<uint64_t>(trial);
    auto tree = TreeCounterFactory().Create(kT, kRho, NoiseStream(id)).value();
    auto honaker = HonakerCounterFactory()
                       .Create(kT, kRho, NoiseStream(id + 100000))
                       .value();
    int64_t truth = 0;
    int64_t last_tree = 0, last_honaker = 0;
    for (int64_t t = 1; t <= 31; ++t) {  // t=31: 5 set bits, worst case
      truth += 3;
      last_tree = tree->Observe(3).value();
      last_honaker = honaker->Observe(3).value();
    }
    tree_err.Add(static_cast<double>(last_tree - truth));
    honaker_err.Add(static_cast<double>(last_honaker - truth));
  }
  EXPECT_LT(honaker_err.variance(), tree_err.variance());
}

TEST(InputPerturbationTest, ErrorGrowsWithTime) {
  InputPerturbationCounter c(1024, 0.5, NoiseStream(0));
  EXPECT_LT(c.ErrorBound(0.05, 1), c.ErrorBound(0.05, 1024));
}

TEST(RecomputeCounterTest, ErrorFlatInTime) {
  RecomputeCounter c(1024, 0.5, NoiseStream(0));
  EXPECT_DOUBLE_EQ(c.ErrorBound(0.05, 1), c.ErrorBound(0.05, 1024));
}

TEST(MatrixCounterTest, CoefficientsAreCentralBinomialRatios) {
  // f_k = binom(2k, k) / 4^k: 1, 1/2, 3/8, 5/16, 35/128.
  MatrixCounter c(8, 0.5, NoiseStream(0));
  EXPECT_DOUBLE_EQ(c.Coefficient(0), 1.0);
  EXPECT_DOUBLE_EQ(c.Coefficient(1), 0.5);
  EXPECT_DOUBLE_EQ(c.Coefficient(2), 3.0 / 8.0);
  EXPECT_DOUBLE_EQ(c.Coefficient(3), 5.0 / 16.0);
  EXPECT_DOUBLE_EQ(c.Coefficient(4), 35.0 / 128.0);
}

TEST(MatrixCounterTest, FactorizationReconstructsPrefixSums) {
  // M * M must equal the all-ones lower-triangular A: with zero noise the
  // released values are exact prefix sums (also covered by the contract
  // sweep; asserted here with a longer adversarial stream).
  MatrixCounter c(200, kInf, NoiseStream(0));
  util::SubstreamRng rng(71, util::substream::kGeneric);
  int64_t truth = 0;
  for (int64_t t = 1; t <= 200; ++t) {
    int64_t z = static_cast<int64_t>(rng.UniformInt(1000));
    truth += z;
    auto r = c.Observe(z);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.value(), truth) << "t=" << t;
  }
}

TEST(MatrixCounterTest, SensitivityGrowsLogarithmically) {
  // Delta^2 = sum f_k^2 ~ ln(T)/pi + c; ratios between horizons follow.
  MatrixCounter small(16, 0.5, NoiseStream(0));
  MatrixCounter big(4096, 0.5, NoiseStream(1));
  EXPECT_GT(big.sensitivity2(), small.sensitivity2());
  EXPECT_LT(big.sensitivity2(), small.sensitivity2() + 2.0);  // ~ln(256)/pi
}

TEST(MatrixCounterTest, BeatsTreeConstantsAtModerateHorizons) {
  // The whole point of the factorization: smaller error at equal budget.
  const int64_t kT = 256;
  const double kRho = 0.25;
  const int kTrials = 1200;
  util::MomentAccumulator tree_err, matrix_err;
  for (int trial = 0; trial < kTrials; ++trial) {
    const uint64_t id = static_cast<uint64_t>(trial);
    auto tree = TreeCounterFactory().Create(kT, kRho, NoiseStream(id)).value();
    auto matrix = MatrixCounterFactory()
                      .Create(kT, kRho, NoiseStream(id + 100000))
                      .value();
    int64_t truth = 0;
    int64_t rt = 0, rm = 0;
    for (int64_t t = 1; t <= 255; ++t) {
      truth += 1;
      rt = tree->Observe(1).value();
      rm = matrix->Observe(1).value();
    }
    tree_err.Add(static_cast<double>(rt - truth));
    matrix_err.Add(static_cast<double>(rm - truth));
  }
  EXPECT_LT(matrix_err.variance(), tree_err.variance());
}

TEST(MatrixCounterTest, FactoryRejectsHugeHorizon) {
  EXPECT_TRUE(MatrixCounterFactory()
                  .Create((int64_t{1} << 16) + 1, 0.5, NoiseStream(0))
                  .status()
                  .IsInvalidArgument());
}

TEST(CounterComparisonTest, TreeBeatsNaiveAtLongHorizons) {
  // The tree's final-step bound is asymptotically polylog(T) vs sqrt(T)
  // (input perturbation) and sqrt(T) calibration (recompute).
  const int64_t kT = 1024;
  const double kRho = 0.5, kBeta = 0.05;
  TreeCounter tree(kT, kRho, NoiseStream(0));
  InputPerturbationCounter ip(kT, kRho, NoiseStream(1));
  RecomputeCounter rc(kT, kRho, NoiseStream(2));
  EXPECT_LT(tree.ErrorBound(kBeta, kT), ip.ErrorBound(kBeta, kT));
  EXPECT_LT(tree.ErrorBound(kBeta, kT), rc.ErrorBound(kBeta, kT));
}

}  // namespace
}  // namespace stream
}  // namespace longdp
