#include "stream/state_io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace longdp {
namespace stream {
namespace state_io {
namespace {

TEST(StateIoTest, DoubleRoundTripIsBitExact) {
  for (double v : {0.0, 1.0, -3.5, 0.1, 1e-300, 1e300, 4.9406564584124654e-324,
                   3.141592653589793, -2.718281828459045}) {
    std::stringstream s;
    WriteDouble(s, v);
    auto r = ReadDouble(s);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), v) << v;
  }
}

TEST(StateIoTest, InfinityRoundTrips) {
  std::stringstream s;
  WriteDouble(s, std::numeric_limits<double>::infinity());
  auto r = ReadDouble(s);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(std::isinf(r.value()));
}

TEST(StateIoTest, TruncatedDoubleFails) {
  std::stringstream s("");
  EXPECT_FALSE(ReadDouble(s).ok());
}

TEST(StateIoTest, IntVectorRoundTrip) {
  std::vector<int64_t> v = {0, -5, 123456789012345, 7};
  std::stringstream s;
  WriteIntVector(s, v);
  std::vector<int64_t> out;
  ASSERT_TRUE(ReadIntVector(s, &out).ok());
  EXPECT_EQ(out, v);
}

TEST(StateIoTest, EmptyVectorsRoundTrip) {
  std::stringstream s;
  WriteIntVector(s, {});
  std::vector<int64_t> out = {1, 2, 3};
  ASSERT_TRUE(ReadIntVector(s, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(StateIoTest, DoubleVectorRoundTrip) {
  std::vector<double> v = {0.5, -1e-9, 42.0};
  std::stringstream s;
  WriteDoubleVector(s, v);
  std::vector<double> out;
  ASSERT_TRUE(ReadDoubleVector(s, &out).ok());
  EXPECT_EQ(out, v);
}

TEST(StateIoTest, RejectsImplausibleSizes) {
  std::stringstream s("-1");
  std::vector<int64_t> out;
  EXPECT_FALSE(ReadIntVector(s, &out).ok());
  std::stringstream huge("999999999999999");
  EXPECT_FALSE(ReadIntVector(huge, &out).ok());
}

TEST(StateIoTest, RejectsTruncatedVectors) {
  std::stringstream s("3 1 2");  // promises 3 elements, provides 2
  std::vector<int64_t> out;
  EXPECT_FALSE(ReadIntVector(s, &out).ok());
}

}  // namespace
}  // namespace state_io
}  // namespace stream
}  // namespace longdp
