#include "stream/state_io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "stream/counter_bank.h"
#include "stream/counter_factory.h"
#include "util/substream.h"

namespace longdp {
namespace stream {
namespace state_io {
namespace {

TEST(StateIoTest, DoubleRoundTripIsBitExact) {
  for (double v : {0.0, 1.0, -3.5, 0.1, 1e-300, 1e300, 4.9406564584124654e-324,
                   3.141592653589793, -2.718281828459045}) {
    std::stringstream s;
    WriteDouble(s, v);
    auto r = ReadDouble(s);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), v) << v;
  }
}

TEST(StateIoTest, InfinityRoundTrips) {
  std::stringstream s;
  WriteDouble(s, std::numeric_limits<double>::infinity());
  auto r = ReadDouble(s);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(std::isinf(r.value()));
}

TEST(StateIoTest, TruncatedDoubleFails) {
  std::stringstream s("");
  EXPECT_FALSE(ReadDouble(s).ok());
}

TEST(StateIoTest, IntVectorRoundTrip) {
  std::vector<int64_t> v = {0, -5, 123456789012345, 7};
  std::stringstream s;
  WriteIntVector(s, v);
  std::vector<int64_t> out;
  ASSERT_TRUE(ReadIntVector(s, &out).ok());
  EXPECT_EQ(out, v);
}

TEST(StateIoTest, EmptyVectorsRoundTrip) {
  std::stringstream s;
  WriteIntVector(s, {});
  std::vector<int64_t> out = {1, 2, 3};
  ASSERT_TRUE(ReadIntVector(s, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(StateIoTest, DoubleVectorRoundTrip) {
  std::vector<double> v = {0.5, -1e-9, 42.0};
  std::stringstream s;
  WriteDoubleVector(s, v);
  std::vector<double> out;
  ASSERT_TRUE(ReadDoubleVector(s, &out).ok());
  EXPECT_EQ(out, v);
}

TEST(StateIoTest, RejectsImplausibleSizes) {
  std::stringstream s("-1");
  std::vector<int64_t> out;
  EXPECT_FALSE(ReadIntVector(s, &out).ok());
  std::stringstream huge("999999999999999");
  EXPECT_FALSE(ReadIntVector(huge, &out).ok());
}

TEST(StateIoTest, RejectsTruncatedVectors) {
  std::stringstream s("3 1 2");  // promises 3 elements, provides 2
  std::vector<int64_t> out;
  EXPECT_FALSE(ReadIntVector(s, &out).ok());
}

TEST(StateIoTest, MalformedDoubleIsRejectedNotZero) {
  // Regression: ReadDouble used strtod with a null endptr, so a corrupted
  // checkpoint token silently restored as 0.0 — a wrong-but-plausible state
  // instead of a hard error.
  for (const char* tok : {"garbage", "1.5zzz", "--2", ".", "1e", "NaNx"}) {
    std::stringstream s(tok);
    auto r = ReadDouble(s);
    ASSERT_FALSE(r.ok()) << tok;
    EXPECT_TRUE(r.status().IsInvalidArgument()) << tok;
  }
}

TEST(StateIoTest, CorruptedDoubleVectorFailsRestore) {
  std::stringstream s("2 1.5 garbage");
  std::vector<double> out;
  Status st = ReadDoubleVector(s, &out);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST(StateIoTest, IntWithTrailingGarbageIsRejectedWholeToken) {
  // Regression: ReadInt used `in >> value`, which stops at the first
  // non-digit — "12abc" restored as 12 with "abc" left to corrupt the NEXT
  // field. The whole token must parse or the whole token must fail.
  for (const char* tok : {"12abc", "1.5", "0x10", "7 8garbage", "++3", ""}) {
    std::stringstream s(tok);
    auto first = ReadInt(s);
    if (first.ok()) {
      // Multi-token cases: the FOLLOWING read must fail, never misparse.
      auto second = ReadInt(s);
      EXPECT_FALSE(second.ok()) << tok;
      EXPECT_TRUE(second.status().IsInvalidArgument() ||
                  second.status().IsNotFound())
          << tok << ": " << second.status().ToString();
    } else {
      EXPECT_FALSE(first.ok()) << tok;
    }
  }
  // Valid tokens, including negatives, still parse.
  std::stringstream ok("-42 9000000000000000000");
  EXPECT_EQ(ReadInt(ok).value(), -42);
  std::stringstream range("99999999999999999999");  // > int64 max: ERANGE
  EXPECT_FALSE(ReadInt(range).ok());
}

TEST(StateIoTest, NegativeCursorIsRejectedNotWrapped) {
  // Regression: ReadCursor used `in >> uint64`, which accepts "-1" and
  // wraps it to 18446744073709551615 — a silently absurd draw cursor. A
  // cursor token must be pure digits.
  for (const char* tok : {"-1", "+3", "12abc", "abc", "", " -9"}) {
    std::stringstream s(tok);
    auto r = ReadCursor(s);
    EXPECT_FALSE(r.ok()) << tok;
  }
  std::stringstream ok("18446744073709551615");  // uint64 max is fine
  EXPECT_EQ(ReadCursor(ok).value(), 18446744073709551615ull);
  std::stringstream range("18446744073709551616");  // one past: ERANGE
  EXPECT_FALSE(ReadCursor(range).ok());
}

TEST(StateIoTest, ExpectTokenMatchesExactlyOnce) {
  std::stringstream s("end-sentinel extra");
  EXPECT_TRUE(ExpectToken(s, "end-sentinel", "test blob").ok());
  // Wrong token: named in the error, stream state is an error.
  std::stringstream wrong("not-it");
  Status st = ExpectToken(wrong, "end-sentinel", "test blob");
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.message().find("end-sentinel"), std::string::npos);
  // Missing entirely (truncation): also a hard error.
  std::stringstream empty("");
  EXPECT_FALSE(ExpectToken(empty, "end-sentinel", "test blob").ok());
}

TEST(StateIoTest, ExpectExhaustedRejectsTrailingTokens) {
  std::stringstream clean("  \n\t ");
  EXPECT_TRUE(ExpectExhausted(clean, "test blob").ok());
  std::stringstream dirty(" stray");
  Status st = ExpectExhausted(dirty, "test blob");
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.message().find("stray"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Mid-stream state round-trips for every registered counter type. A counter
// serialized at time t and restored into a freshly constructed counter (same
// keyed substream — the keys re-derive from construction parameters, only
// the draw cursors travel in the state) must finish the stream with releases
// identical to the uninterrupted original. This pins the substream cursors
// each implementation persists, so scratch-buffer and batching refactors
// that forget to carry a field fail here immediately.

class CounterRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CounterRoundTripTest, MidStreamStateRoundTripsStandalone) {
  const std::string name = GetParam();
  auto factory = MakeCounterFactory(name).value();
  const int64_t T = 16;
  const double rho = 2.0;

  const util::SubstreamRng noise(0x5107 + static_cast<uint64_t>(name.size()),
                                 util::substream::kCounterNoise);
  auto original = factory->Create(T, rho, noise).value();
  util::SubstreamRng data_rng(0xDA7A, util::substream::kGeneric);
  std::vector<int64_t> stream(static_cast<size_t>(T));
  for (auto& z : stream) {
    z = static_cast<int64_t>(data_rng.UniformInt(5));
  }

  const int64_t split = T / 2;
  for (int64_t t = 0; t < split; ++t) {
    ASSERT_TRUE(original->Observe(stream[static_cast<size_t>(t)]).ok());
  }

  std::stringstream state;
  ASSERT_TRUE(original->SaveState(state).ok()) << name;
  auto restored = factory->Create(T, rho, noise).value();
  ASSERT_TRUE(restored->RestoreState(state).ok()) << name;
  EXPECT_EQ(restored->steps(), split) << name;

  // The restored counter resumes its keyed substreams at the saved
  // cursors; every remaining release must match exactly.
  for (int64_t t = split; t < T; ++t) {
    auto a = original->Observe(stream[static_cast<size_t>(t)]);
    auto b = restored->Observe(stream[static_cast<size_t>(t)]);
    ASSERT_TRUE(a.ok()) << name;
    ASSERT_TRUE(b.ok()) << name;
    EXPECT_EQ(a.value(), b.value())
        << name << ": release diverged at t=" << t + 1;
  }
}

TEST_P(CounterRoundTripTest, MidStreamStateRoundTripsThroughBank) {
  const std::string name = GetParam();
  const int64_t T = 12;
  const int64_t n = 60;

  CounterBank::Options opt;
  opt.horizon = T;
  opt.population = n;
  opt.total_rho = 4.0;
  opt.seed = 0xBA2C + static_cast<uint64_t>(name.size());
  opt.factory = MakeCounterFactory(name).value();

  auto original = CounterBank::Create(opt).value();
  util::SubstreamRng data_rng(0xFEED, util::substream::kGeneric);

  // A feasible increment schedule: z[b-1] nonzero only for b <= t, with
  // small counts so every weight path stays plausible.
  auto make_round = [&](int64_t t) {
    std::vector<int64_t> z(static_cast<size_t>(T), 0);
    for (int64_t b = 1; b <= t; ++b) {
      z[static_cast<size_t>(b - 1)] =
          static_cast<int64_t>(data_rng.UniformInt(4));
    }
    return z;
  };
  std::vector<std::vector<int64_t>> zs;
  for (int64_t t = 1; t <= T; ++t) zs.push_back(make_round(t));

  const int64_t split = T / 2;
  for (int64_t t = 0; t < split; ++t) {
    ASSERT_TRUE(original->ObserveRound(zs[static_cast<size_t>(t)]).ok())
        << name;
  }

  std::stringstream state;
  ASSERT_TRUE(original->SaveState(state).ok()) << name;
  auto restored = CounterBank::Create(opt).value();
  ASSERT_TRUE(restored->RestoreState(state).ok()) << name;
  EXPECT_EQ(restored->steps(), split) << name;

  for (int64_t t = split; t < T; ++t) {
    auto a = original->ObserveRound(zs[static_cast<size_t>(t)]);
    auto b = restored->ObserveRound(zs[static_cast<size_t>(t)]);
    ASSERT_TRUE(a.ok()) << name;
    ASSERT_TRUE(b.ok()) << name;
    EXPECT_EQ(a.value(), b.value())
        << name << ": bank release diverged at t=" << t + 1;
    EXPECT_EQ(original->raw_row(), restored->raw_row())
        << name << ": raw row diverged at t=" << t + 1;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCounters, CounterRoundTripTest,
                         ::testing::ValuesIn(RegisteredCounterNames()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string n = i.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace state_io
}  // namespace stream
}  // namespace longdp
