#include "stream/tree_counter.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/mathutil.h"
#include "util/substream.h"

namespace longdp {
namespace stream {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

util::SubstreamRng NoiseStream(uint64_t i) {
  return util::SubstreamRng(0x7EE5 + i, util::substream::kCounterNoise);
}

std::unique_ptr<StreamCounter> MakeTree(int64_t horizon, double rho,
                                        uint64_t stream_id = 0) {
  auto r = TreeCounterFactory().Create(horizon, rho, NoiseStream(stream_id));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(TreeCounterTest, FactoryValidatesArgs) {
  TreeCounterFactory f;
  EXPECT_FALSE(f.Create(0, 1.0, NoiseStream(0)).ok());
  EXPECT_FALSE(f.Create(10, 0.0, NoiseStream(0)).ok());
  EXPECT_FALSE(f.Create(10, -1.0, NoiseStream(0)).ok());
  EXPECT_TRUE(f.Create(1, 0.1, NoiseStream(0)).ok());
}

TEST(TreeCounterTest, ZeroNoiseIsExactPrefixSum) {
  auto counter = MakeTree(64, kInf);
  int64_t truth = 0;
  for (int64_t t = 1; t <= 64; ++t) {
    int64_t z = t % 5;
    truth += z;
    auto r = counter->Observe(z);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), truth) << "t=" << t;
  }
}

TEST(TreeCounterTest, RejectsPastHorizon) {
  auto counter = MakeTree(3, kInf);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(counter->Observe(1).ok());
  }
  EXPECT_TRUE(counter->Observe(1).status().IsOutOfRange());
}

TEST(TreeCounterTest, LevelsMatchHorizon) {
  EXPECT_EQ(TreeCounter(1, 1.0, NoiseStream(0)).levels(), 1);
  EXPECT_EQ(TreeCounter(2, 1.0, NoiseStream(0)).levels(), 2);
  EXPECT_EQ(TreeCounter(12, 1.0, NoiseStream(0)).levels(), 4);
  EXPECT_EQ(TreeCounter(16, 1.0, NoiseStream(0)).levels(), 5);
  EXPECT_EQ(TreeCounter(1024, 1.0, NoiseStream(0)).levels(), 11);
}

TEST(TreeCounterTest, NodeVarianceCalibration) {
  // sigma^2 = L / (2 rho).
  TreeCounter c(12, 0.005, NoiseStream(0));
  EXPECT_DOUBLE_EQ(c.node_sigma2(), 4.0 / (2.0 * 0.005));
}

TEST(TreeCounterTest, ErrorWithinBoundMostOfTheTime) {
  // Run many independent counters; at each step the error should stay
  // within ErrorBound(beta) with frequency >= 1 - beta (up to sampling
  // slack).
  const int64_t kT = 32;
  const double kRho = 0.5;
  const double kBeta = 0.05;
  const int kTrials = 400;
  util::SubstreamRng rng(3, util::substream::kGeneric);
  int violations = 0;
  int checks = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto counter = MakeTree(kT, kRho, static_cast<uint64_t>(trial));
    int64_t truth = 0;
    for (int64_t t = 1; t <= kT; ++t) {
      int64_t z = static_cast<int64_t>(rng.UniformInt(4));
      truth += z;
      auto r = counter->Observe(z);
      ASSERT_TRUE(r.ok());
      double err = std::fabs(static_cast<double>(r.value() - truth));
      if (err > counter->ErrorBound(kBeta, t)) ++violations;
      ++checks;
    }
  }
  double violation_rate = static_cast<double>(violations) / checks;
  EXPECT_LT(violation_rate, kBeta * 1.5 + 0.01);
}

TEST(TreeCounterTest, ErrorIndependentOfStreamContent) {
  // The error distribution is data-independent: feeding a heavy stream and
  // a zero stream gives statistically similar error spreads.
  const int64_t kT = 16;
  const double kRho = 0.2;
  const int kTrials = 2000;
  util::MomentAccumulator heavy, zero;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto a = MakeTree(kT, kRho, static_cast<uint64_t>(trial));
    auto b = MakeTree(kT, kRho, static_cast<uint64_t>(trial) + 100000);
    int64_t truth_a = 0;
    for (int64_t t = 1; t <= kT; ++t) {
      truth_a += 1000;
      auto ra = a->Observe(1000);
      auto rb = b->Observe(0);
      ASSERT_TRUE(ra.ok());
      ASSERT_TRUE(rb.ok());
      if (t == kT) {
        heavy.Add(static_cast<double>(ra.value() - truth_a));
        zero.Add(static_cast<double>(rb.value()));
      }
    }
  }
  EXPECT_NEAR(heavy.mean(), zero.mean(),
              6.0 * std::sqrt((heavy.variance() + zero.variance()) /
                              kTrials));
  EXPECT_NEAR(heavy.variance(), zero.variance(), 0.25 * zero.variance());
}

TEST(TreeCounterTest, FinalErrorVarianceMatchesNodeDecomposition) {
  // At t with popcount(t) set bits, the released sum carries popcount(t)
  // node noises: Var = popcount(t) * sigma^2.
  const int64_t kT = 8;
  const double kRho = 0.5;
  const int kTrials = 4000;
  // t = 7 = 0b111 -> 3 nodes.
  util::MomentAccumulator acc;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto counter = MakeTree(kT, kRho, static_cast<uint64_t>(trial));
    int64_t truth = 0;
    int64_t released = 0;
    for (int64_t t = 1; t <= 7; ++t) {
      truth += 2;
      released = counter->Observe(2).value();
    }
    acc.Add(static_cast<double>(released - truth));
  }
  TreeCounter reference(kT, kRho, NoiseStream(0));
  double expected_var = 3.0 * reference.node_sigma2();
  EXPECT_NEAR(acc.mean(), 0.0, 5.0 * std::sqrt(expected_var / kTrials));
  EXPECT_NEAR(acc.variance(), expected_var, 0.15 * expected_var);
}

// Parameterized sweep over horizons: exactness with zero noise and bound
// sanity across tree shapes.
class TreeCounterHorizonTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(TreeCounterHorizonTest, ZeroNoiseExactAcrossHorizons) {
  const int64_t kT = GetParam();
  auto counter = MakeTree(kT, kInf);
  util::SubstreamRng rng(11, util::substream::kGeneric);
  int64_t truth = 0;
  for (int64_t t = 1; t <= kT; ++t) {
    int64_t z = static_cast<int64_t>(rng.UniformInt(3));
    truth += z;
    auto r = counter->Observe(z);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), truth);
  }
}

TEST_P(TreeCounterHorizonTest, BoundGrowsWithPopcount) {
  const int64_t kT = GetParam();
  TreeCounter c(kT, 0.1, NoiseStream(0));
  // popcount(1) = 1 is the smallest bound; all-ones t the largest.
  int64_t all_ones = 1;
  while ((all_ones << 1) + 1 <= kT) all_ones = (all_ones << 1) + 1;
  EXPECT_LE(c.ErrorBound(0.05, 1), c.ErrorBound(0.05, all_ones));
}

INSTANTIATE_TEST_SUITE_P(Horizons, TreeCounterHorizonTest,
                         ::testing::Values(1, 2, 3, 7, 12, 16, 33, 100));

}  // namespace
}  // namespace stream
}  // namespace longdp
