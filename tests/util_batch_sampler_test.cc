// Deterministic unit tests for the batched stage-2 sampling primitives:
// BatchSampler's Lemire multiply-shift bounded draws, the PartialShuffle
// primitive (including the k == span full-shuffle and single-element edges
// the old inline loops hand-rolled), and the FlatGroups counting-sort
// regroup. Distributional properties live in sampling_statistical_test.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "util/batch_sampler.h"
#include "util/flat_groups.h"
#include "util/rng.h"

namespace longdp {
namespace util {
namespace {

TEST(BatchSamplerTest, BoundedStaysInRange) {
  Rng rng(1);
  BatchSampler sampler(&rng);
  for (uint64_t bound : {2ull, 3ull, 10ull, 12345ull, 1ull << 40}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(sampler.Bounded(bound), bound) << "bound=" << bound;
    }
  }
}

TEST(BatchSamplerTest, BoundedDegenerateBoundsConsumeNoWords) {
  // bound 0 and bound 1 have a single representable answer; the stream
  // must not advance (unlike Rng::UniformInt(1), which burns a word).
  Rng rng(7), reference(7);
  BatchSampler sampler(&rng);
  EXPECT_EQ(sampler.Bounded(0), 0u);
  EXPECT_EQ(sampler.Bounded(1), 0u);
  EXPECT_EQ(rng.Next(), reference.Next());
}

TEST(BatchSamplerTest, BoundedDeterministicFromSeed) {
  Rng a(42), b(42);
  BatchSampler sa(&a), sb(&b);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(sa.Bounded(997), sb.Bounded(997));
  }
}

TEST(BatchSamplerTest, BulkMatchesSingleDraws) {
  // With identical seeds, the bulk fill and a loop of single draws see the
  // same word stream, so (absent astronomically rare rejections) the
  // outputs coincide element for element.
  const uint64_t kBound = 12289;
  const size_t kCount = 1000;  // spans multiple prefetch chunks
  Rng a(99), b(99);
  BatchSampler sa(&a), sb(&b);
  std::vector<uint64_t> bulk(kCount);
  sa.BoundedBulk(kBound, bulk.data(), kCount);
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(bulk[i], sb.Bounded(kBound)) << "i=" << i;
  }
  // Both consumed exactly kCount words.
  EXPECT_EQ(a.Next(), b.Next());
}

TEST(BatchSamplerTest, BulkDegenerateBoundZeroFillsWithoutWords) {
  Rng rng(5), reference(5);
  BatchSampler sampler(&rng);
  std::vector<uint64_t> out(64, 0xFFFFFFFFull);
  sampler.BoundedBulk(1, out.data(), out.size());
  for (uint64_t v : out) EXPECT_EQ(v, 0u);
  sampler.BoundedBulk(0, out.data(), out.size());
  for (uint64_t v : out) EXPECT_EQ(v, 0u);
  EXPECT_EQ(rng.Next(), reference.Next());
}

TEST(BatchSamplerTest, BulkCoversAllResidues) {
  Rng rng(3);
  BatchSampler sampler(&rng);
  std::vector<uint64_t> out(4000);
  sampler.BoundedBulk(7, out.data(), out.size());
  std::vector<int> seen(7, 0);
  for (uint64_t v : out) {
    ASSERT_LT(v, 7u);
    ++seen[static_cast<size_t>(v)];
  }
  for (int c : seen) EXPECT_GT(c, 0);
}

TEST(BatchSamplerTest, PartialShufflePermutes) {
  Rng rng(11);
  BatchSampler sampler(&rng);
  std::vector<int64_t> v(50);
  std::iota(v.begin(), v.end(), 0);
  sampler.PartialShuffle(v.data(), static_cast<int64_t>(v.size()), 20);
  std::vector<int64_t> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i], static_cast<int64_t>(i));
  }
}

TEST(BatchSamplerTest, FullShuffleAndMaximalPartialShuffleMatch) {
  // k == n (full shuffle) must skip the final bound-1 draw, making it
  // stream- and output-identical to k == n - 1. This is the "k == span"
  // edge the old inline loops special-cased by hand.
  for (int64_t n : {2, 3, 17, 64, 301}) {
    Rng a(1000 + static_cast<uint64_t>(n)), b(1000 + static_cast<uint64_t>(n));
    BatchSampler sa(&a), sb(&b);
    std::vector<int64_t> va(static_cast<size_t>(n)), vb(static_cast<size_t>(n));
    std::iota(va.begin(), va.end(), 0);
    std::iota(vb.begin(), vb.end(), 0);
    sa.PartialShuffle(va.data(), n, n);
    sb.PartialShuffle(vb.data(), n, n - 1);
    EXPECT_EQ(va, vb) << "n=" << n;
    EXPECT_EQ(a.Next(), b.Next()) << "n=" << n;
  }
}

TEST(BatchSamplerTest, PartialShuffleClampsOversizedK) {
  Rng a(21), b(21);
  BatchSampler sa(&a), sb(&b);
  std::vector<int64_t> va(10), vb(10);
  std::iota(va.begin(), va.end(), 0);
  std::iota(vb.begin(), vb.end(), 0);
  sa.PartialShuffle(va.data(), 10, 1000);
  sb.PartialShuffle(vb.data(), 10, 10);
  EXPECT_EQ(va, vb);
  EXPECT_EQ(a.Next(), b.Next());
}

TEST(BatchSamplerTest, PartialShuffleDegenerateSpansAreNoOps) {
  Rng rng(31), reference(31);
  BatchSampler sampler(&rng);
  std::vector<int64_t> single{7};
  sampler.PartialShuffle(single.data(), 1, 1);   // one element
  EXPECT_EQ(single[0], 7);
  sampler.PartialShuffle(single.data(), 1, 50);  // k > n == 1
  EXPECT_EQ(single[0], 7);
  std::vector<int64_t> several{1, 2, 3};
  sampler.PartialShuffle(several.data(), 3, 0);  // k == 0
  EXPECT_EQ(several, (std::vector<int64_t>{1, 2, 3}));
  sampler.PartialShuffle(several.data(), 0, 3);  // empty span
  // None of the above may touch the stream.
  EXPECT_EQ(rng.Next(), reference.Next());
}

TEST(BatchSamplerTest, PartialShuffleSpansChunkBoundary) {
  // More draws than one prefetch chunk (256 words) exercises the refill
  // path; the result must still be a permutation and deterministic.
  Rng a(77), b(77);
  BatchSampler sa(&a), sb(&b);
  std::vector<int64_t> va(1000), vb(1000);
  std::iota(va.begin(), va.end(), 0);
  std::iota(vb.begin(), vb.end(), 0);
  sa.PartialShuffle(va.data(), 1000, 600);
  sb.PartialShuffle(vb.data(), 1000, 600);
  EXPECT_EQ(va, vb);
  std::sort(va.begin(), va.end());
  for (size_t i = 0; i < va.size(); ++i) {
    EXPECT_EQ(va[i], static_cast<int64_t>(i));
  }
}

TEST(BatchSamplerTest, ShuffleMatchesPartialShuffleFullSpan) {
  Rng a(55), b(55);
  BatchSampler sa(&a), sb(&b);
  std::vector<int64_t> va(40), vb(40);
  std::iota(va.begin(), va.end(), 0);
  std::iota(vb.begin(), vb.end(), 0);
  sa.Shuffle(&va);
  sb.PartialShuffle(vb.data(), 40, 40);
  EXPECT_EQ(va, vb);
}

TEST(FlatGroupsTest, CountPrefixScatterRoundTrip) {
  FlatGroups g;
  g.Reset(3);
  g.AddCount(0, 2);
  g.AddCount(2, 3);
  g.AddCount(0, 1);  // counts accumulate
  g.BuildOffsets();
  EXPECT_EQ(g.num_groups(), 3u);
  EXPECT_EQ(g.size(0), 3);
  EXPECT_EQ(g.size(1), 0);
  EXPECT_EQ(g.size(2), 3);
  EXPECT_EQ(g.total(), 6);
  // Scatter out of group order; within-group order follows Place order.
  g.Place(2, 100);
  g.Place(0, 10);
  g.Place(2, 101);
  g.Place(0, 11);
  g.Place(0, 12);
  g.Place(2, 102);
  EXPECT_EQ(std::vector<int64_t>(g.group_data(0), g.group_data(0) + 3),
            (std::vector<int64_t>{10, 11, 12}));
  EXPECT_EQ(std::vector<int64_t>(g.group_data(2), g.group_data(2) + 3),
            (std::vector<int64_t>{100, 101, 102}));
}

TEST(FlatGroupsTest, ResetKeepsNothingAndSupportsReuse) {
  FlatGroups g;
  g.Reset(2);
  g.AddCount(0, 4);
  g.BuildOffsets();
  for (int64_t r = 0; r < 4; ++r) g.Place(0, r);
  g.Reset(5);
  EXPECT_EQ(g.num_groups(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(g.size(i), 0);
  g.AddCount(4, 1);
  g.BuildOffsets();
  g.Place(4, 9);
  EXPECT_EQ(g.total(), 1);
  EXPECT_EQ(g.group_data(4)[0], 9);
}

TEST(FlatGroupsTest, SwapExchangesContents) {
  FlatGroups a, b;
  a.Reset(1);
  a.AddCount(0, 1);
  a.BuildOffsets();
  a.Place(0, 42);
  b.Reset(2);
  b.BuildOffsets();
  a.swap(b);
  EXPECT_EQ(a.num_groups(), 2u);
  EXPECT_EQ(a.total(), 0);
  EXPECT_EQ(b.num_groups(), 1u);
  EXPECT_EQ(b.group_data(0)[0], 42);
}

TEST(FlatGroupsTest, EmptyGroupsHaveValidZeroState) {
  FlatGroups g;
  EXPECT_EQ(g.num_groups(), 0u);
  EXPECT_EQ(g.total(), 0);
  g.Reset(0);
  g.BuildOffsets();
  EXPECT_EQ(g.num_groups(), 0u);
  EXPECT_EQ(g.total(), 0);
}

}  // namespace
}  // namespace util
}  // namespace longdp
