#include "util/bits.h"

#include <gtest/gtest.h>

namespace longdp {
namespace util {
namespace {

TEST(BitsTest, NumPatternsAndMask) {
  EXPECT_EQ(NumPatterns(1), 2u);
  EXPECT_EQ(NumPatterns(3), 8u);
  EXPECT_EQ(NumPatterns(10), 1024u);
  EXPECT_EQ(LowMask(3), 7u);
  EXPECT_EQ(LowMask(1), 1u);
}

TEST(BitsTest, PopcountMatchesPatterns) {
  EXPECT_EQ(Popcount(0), 0);
  EXPECT_EQ(Popcount(0b1011), 3);
  EXPECT_EQ(Popcount(LowMask(7)), 7);
}

TEST(BitsTest, PatternStringRoundTrip) {
  for (int k = 1; k <= 6; ++k) {
    for (Pattern p = 0; p < NumPatterns(k); ++p) {
      std::string s = PatternToString(p, k);
      ASSERT_EQ(s.size(), static_cast<size_t>(k));
      auto parsed = PatternFromString(s);
      ASSERT_TRUE(parsed.ok());
      EXPECT_EQ(parsed.value(), p) << "k=" << k << " s=" << s;
    }
  }
}

TEST(BitsTest, PatternStringConvention) {
  // Oldest bit first: code 0b011 over k=3 renders "011" (oldest bit 0).
  EXPECT_EQ(PatternToString(0b011, 3), "011");
  EXPECT_EQ(PatternToString(0b100, 3), "100");
  EXPECT_EQ(PatternFromString("110").value(), Pattern{0b110});
}

TEST(BitsTest, PatternFromStringRejectsGarbage) {
  EXPECT_FALSE(PatternFromString("").ok());
  EXPECT_FALSE(PatternFromString("01a").ok());
  EXPECT_FALSE(PatternFromString(std::string(100, '0')).ok());
}

TEST(BitsTest, SlideAppendDropsOldest) {
  // Window "101" + bit 1 -> "011".
  EXPECT_EQ(SlideAppend(0b101, 3, 1), Pattern{0b011});
  // Window "111" + bit 0 -> "110".
  EXPECT_EQ(SlideAppend(0b111, 3, 0), Pattern{0b110});
  // Stays within k bits.
  for (Pattern p = 0; p < NumPatterns(4); ++p) {
    EXPECT_LT(SlideAppend(p, 4, 1), NumPatterns(4));
  }
}

TEST(BitsTest, OverlapIsRecentBits) {
  // "101": overlap (last 2 bits) is "01".
  EXPECT_EQ(Overlap(0b101, 3), Pattern{0b01});
  EXPECT_EQ(Overlap(0b110, 3), Pattern{0b10});
}

TEST(BitsTest, OverlapConsistentWithSlide) {
  // Sliding from p: new pattern's prefix (old bits) equals Overlap(p).
  const int k = 4;
  for (Pattern p = 0; p < NumPatterns(k); ++p) {
    for (int c = 0; c <= 1; ++c) {
      Pattern next = SlideAppend(p, k, c);
      EXPECT_EQ(next >> 1, Overlap(p, k));
      EXPECT_EQ(NewestBit(next), c);
    }
  }
}

TEST(BitsTest, OldestAndNewestBit) {
  EXPECT_EQ(OldestBit(0b100, 3), 1);
  EXPECT_EQ(OldestBit(0b011, 3), 0);
  EXPECT_EQ(NewestBit(0b110), 0);
  EXPECT_EQ(NewestBit(0b011), 1);
}

TEST(BitsTest, SuffixExtractsRecent) {
  // "1011", last 2 bits = "11".
  EXPECT_EQ(Suffix(0b1011, 2), Pattern{0b11});
  EXPECT_EQ(Suffix(0b1011, 4), Pattern{0b1011});
  EXPECT_EQ(Suffix(0b1011, 1), Pattern{0b1});
}

TEST(BitsTest, HasOnesRun) {
  EXPECT_TRUE(HasOnesRun(0b0110, 4, 2));
  EXPECT_FALSE(HasOnesRun(0b0101, 4, 2));
  EXPECT_TRUE(HasOnesRun(0b1111, 4, 4));
  EXPECT_FALSE(HasOnesRun(0b1110, 4, 4));
  EXPECT_TRUE(HasOnesRun(0b0000, 4, 0));  // run of 0 always true
  EXPECT_FALSE(HasOnesRun(0b1111, 4, 5));  // longer than window
}

TEST(BitsTest, HasAtLeastOnes) {
  EXPECT_TRUE(HasAtLeastOnes(0b101, 3, 2));
  EXPECT_FALSE(HasAtLeastOnes(0b101, 3, 3));
  EXPECT_TRUE(HasAtLeastOnes(0b000, 3, 0));
}

TEST(BitsTest, ValidateWindow) {
  EXPECT_TRUE(ValidateWindow(1).ok());
  EXPECT_TRUE(ValidateWindow(12).ok());
  EXPECT_TRUE(ValidateWindow(30).ok());
  EXPECT_FALSE(ValidateWindow(0).ok());
  EXPECT_FALSE(ValidateWindow(-2).ok());
  EXPECT_FALSE(ValidateWindow(31).ok());
}

// Property sweep: the run/ones predicates agree with brute force over the
// rendered strings.
class BitsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BitsPropertyTest, RunDetectionMatchesString) {
  const int k = GetParam();
  for (Pattern p = 0; p < NumPatterns(k); ++p) {
    std::string s = PatternToString(p, k);
    for (int run = 1; run <= k; ++run) {
      bool expected = s.find(std::string(static_cast<size_t>(run), '1')) !=
                      std::string::npos;
      EXPECT_EQ(HasOnesRun(p, k, run), expected)
          << "k=" << k << " p=" << s << " run=" << run;
    }
    int ones = static_cast<int>(std::count(s.begin(), s.end(), '1'));
    EXPECT_EQ(Popcount(p), ones);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitsPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8));

}  // namespace
}  // namespace util
}  // namespace longdp
