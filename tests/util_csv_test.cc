#include "util/csv.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace longdp {
namespace util {
namespace {

TEST(CsvWriterTest, PlainRow) {
  std::ostringstream out;
  CsvWriter w(&out);
  w.WriteRow({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvWriterTest, QuotesSpecials) {
  std::ostringstream out;
  CsvWriter w(&out);
  w.WriteRow({"a,b", "say \"hi\"", "line\nbreak"});
  EXPECT_EQ(out.str(), "\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(CsvWriterTest, FieldFormatting) {
  EXPECT_EQ(CsvWriter::Field(int64_t{42}), "42");
  EXPECT_EQ(CsvWriter::Field(uint64_t{7}), "7");
  EXPECT_EQ(CsvWriter::Field(0.5), "0.5");
  EXPECT_EQ(CsvWriter::Field(std::string("x")), "x");
}

TEST(ParseCsvLineTest, Simple) {
  auto r = ParseCsvLine("a,b,c");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ParseCsvLineTest, EmptyFields) {
  auto r = ParseCsvLine(",,");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 3u);
  for (const auto& f : r.value()) EXPECT_TRUE(f.empty());
}

TEST(ParseCsvLineTest, QuotedFieldWithComma) {
  auto r = ParseCsvLine("\"a,b\",c");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<std::string>{"a,b", "c"}));
}

TEST(ParseCsvLineTest, DoubledQuotes) {
  auto r = ParseCsvLine("\"say \"\"hi\"\"\"");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<std::string>{"say \"hi\""}));
}

TEST(ParseCsvLineTest, StripsCarriageReturn) {
  auto r = ParseCsvLine("a,b\r");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<std::string>{"a", "b"}));
}

TEST(ParseCsvLineTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsvLine("\"abc").ok());
}

TEST(ParseCsvLineTest, StrayQuoteFails) {
  EXPECT_FALSE(ParseCsvLine("ab\"c\"").ok());
}

TEST(CsvRoundTripTest, WriteThenRead) {
  std::string path = ::testing::TempDir() + "/longdp_csv_roundtrip.csv";
  {
    std::ofstream out(path);
    CsvWriter w(&out);
    w.WriteRow({"id", "value"});
    w.WriteRow({"1", "a,b"});
    w.WriteRow({"2", "plain"});
  }
  auto rows = ReadCsvFile(path);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 3u);
  EXPECT_EQ(rows.value()[1][1], "a,b");
  EXPECT_EQ(rows.value()[2][1], "plain");
  std::remove(path.c_str());
}

TEST(ParseFieldTest, Int64AcceptsWholeFieldOnly) {
  EXPECT_EQ(ParseInt64Field("42").value(), 42);
  EXPECT_EQ(ParseInt64Field("-7").value(), -7);
  EXPECT_EQ(ParseInt64Field("9223372036854775807").value(),
            INT64_MAX);
  for (const char* bad : {"", "abc", "1.5", "12x", " 12 ", "0x10", "--3"}) {
    EXPECT_TRUE(ParseInt64Field(bad).status().IsInvalidArgument())
        << "'" << bad << "' was accepted";
  }
  EXPECT_TRUE(
      ParseInt64Field("9223372036854775808").status().IsOutOfRange());
}

TEST(ParseFieldTest, DoubleAcceptsRoundTripFormats) {
  EXPECT_DOUBLE_EQ(ParseDoubleField("1.5").value(), 1.5);
  EXPECT_DOUBLE_EQ(ParseDoubleField("-2e-3").value(), -2e-3);
  EXPECT_TRUE(std::isinf(ParseDoubleField("inf").value()));
  EXPECT_TRUE(std::isnan(ParseDoubleField("nan").value()));
  for (const char* bad : {"", "garbage", "1.5zzz", ".", "1e", "NaNx"}) {
    EXPECT_TRUE(ParseDoubleField(bad).status().IsInvalidArgument())
        << "'" << bad << "' was accepted";
  }
}

TEST(CsvReadTest, MissingFileIsIOError) {
  auto r = ReadCsvFile("/nonexistent/definitely/missing.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

}  // namespace
}  // namespace util
}  // namespace longdp
