#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace longdp {
namespace util {
namespace {

TEST(FormatDoubleRoundTripTest, RoundTripsExactly) {
  for (double v : {0.0, -0.0, 1.0, -1.5, 0.005, 1.0 / 3.0, 6.02214076e23,
                   5e-324, std::numeric_limits<double>::max(),
                   std::numeric_limits<double>::min(),
                   0.1 + 0.2, 1e-9, 123456789.123456789}) {
    std::string s = FormatDoubleRoundTrip(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << "for " << s;
  }
}

TEST(FormatDoubleRoundTripTest, PrefersShortForm) {
  EXPECT_EQ(FormatDoubleRoundTrip(0.005), "0.005");
  EXPECT_EQ(FormatDoubleRoundTrip(1.0), "1");
  EXPECT_EQ(FormatDoubleRoundTrip(-2.5), "-2.5");
}

TEST(FormatDoubleRoundTripTest, NonFinite) {
  EXPECT_EQ(FormatDoubleRoundTrip(std::nan("")), "nan");
  EXPECT_EQ(FormatDoubleRoundTrip(HUGE_VAL), "inf");
  EXPECT_EQ(FormatDoubleRoundTrip(-HUGE_VAL), "-inf");
}

TEST(JsonWriterTest, NestedDocument) {
  std::ostringstream out;
  JsonWriter w(&out);
  w.BeginObject();
  w.KeyValue("name", "bench");
  w.KeyValue("count", static_cast<int64_t>(3));
  w.Key("values");
  w.BeginArray();
  w.Value(0.5);
  w.Value(true);
  w.Null();
  w.EndArray();
  w.Key("empty");
  w.BeginObject();
  w.EndObject();
  w.EndObject();

  auto parsed = ParseJson(out.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& doc = parsed.value();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.Find("name")->string_value(), "bench");
  EXPECT_EQ(doc.Find("count")->number_value(), 3.0);
  const auto& values = doc.Find("values")->array_items();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0].number_value(), 0.5);
  EXPECT_TRUE(values[1].bool_value());
  EXPECT_TRUE(values[2].is_null());
  EXPECT_TRUE(doc.Find("empty")->is_object());
  EXPECT_TRUE(doc.Find("empty")->object_items().empty());
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

TEST(JsonWriterTest, EscapesStrings) {
  std::ostringstream out;
  JsonWriter w(&out);
  w.BeginObject();
  w.KeyValue("s", "a\"b\\c\nd\te\x01");
  w.EndObject();
  auto parsed = ParseJson(out.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().Find("s")->string_value(), "a\"b\\c\nd\te\x01");
}

TEST(JsonWriterTest, NonFiniteDoublesAsStrings) {
  std::ostringstream out;
  JsonWriter w(&out);
  w.BeginArray();
  w.Value(std::nan(""));
  w.Value(HUGE_VAL);
  w.Value(-HUGE_VAL);
  w.EndArray();
  auto parsed = ParseJson(out.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& items = parsed.value().array_items();
  ASSERT_EQ(items.size(), 3u);
  double v = 0.0;
  ASSERT_TRUE(JsonNumberValue(items[0], &v));
  EXPECT_TRUE(std::isnan(v));
  ASSERT_TRUE(JsonNumberValue(items[1], &v));
  EXPECT_EQ(v, HUGE_VAL);
  ASSERT_TRUE(JsonNumberValue(items[2], &v));
  EXPECT_EQ(v, -HUGE_VAL);
  EXPECT_FALSE(JsonNumberValue(JsonValue(std::string("pelican")), &v));
}

TEST(JsonParserTest, ParsesScalars) {
  EXPECT_EQ(ParseJson("42").value().number_value(), 42.0);
  EXPECT_EQ(ParseJson("-1.5e3").value().number_value(), -1500.0);
  EXPECT_TRUE(ParseJson("true").value().bool_value());
  EXPECT_FALSE(ParseJson("false").value().bool_value());
  EXPECT_TRUE(ParseJson("null").value().is_null());
  EXPECT_EQ(ParseJson("\"hi\"").value().string_value(), "hi");
}

TEST(JsonParserTest, ParsesUnicodeEscapes) {
  auto parsed = ParseJson("\"\\u00e9\\u20ac\\ud83d\\ude00\"");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().string_value(), "\xC3\xA9\xE2\x82\xAC\xF0\x9F\x98\x80");
}

TEST(JsonParserTest, PreservesObjectOrder) {
  auto parsed = ParseJson(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(parsed.ok());
  const auto& items = parsed.value().object_items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].first, "z");
  EXPECT_EQ(items[1].first, "a");
  EXPECT_EQ(items[2].first, "m");
}

TEST(JsonParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1, 2,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\": }").ok());
  EXPECT_FALSE(ParseJson("{\"a\": 1} extra").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("1.2.3").ok());
  EXPECT_FALSE(ParseJson("NaN").ok());
  EXPECT_FALSE(ParseJson("{'a': 1}").ok());
}

TEST(JsonParserTest, RejectsDeepNesting) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonParserTest, NumberRoundTripsThroughWriter) {
  for (double v : {0.005, 1.0 / 3.0, 6.02214076e23, 5e-324}) {
    std::ostringstream out;
    JsonWriter w(&out);
    w.BeginArray();
    w.Value(v);
    w.EndArray();
    auto parsed = ParseJson(out.str());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().array_items()[0].number_value(), v);
  }
}

}  // namespace
}  // namespace util
}  // namespace longdp
