#include "util/mathutil.h"

#include <gtest/gtest.h>

#include <cmath>

namespace longdp {
namespace util {
namespace {

TEST(MathTest, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(4), 2);
  EXPECT_EQ(CeilLog2(5), 3);
  EXPECT_EQ(CeilLog2(1024), 10);
  EXPECT_EQ(CeilLog2(1025), 11);
}

TEST(MathTest, FloorLog2) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(4), 2);
  EXPECT_EQ(FloorLog2(1023), 9);
  EXPECT_EQ(FloorLog2(1024), 10);
}

TEST(MathTest, TreeLevels) {
  // L = max(ceil(log2(x)), 1) — the Corollary B.1 quantity.
  EXPECT_EQ(TreeLevels(1), 1);
  EXPECT_EQ(TreeLevels(2), 1);
  EXPECT_EQ(TreeLevels(3), 2);
  EXPECT_EQ(TreeLevels(12), 4);
  EXPECT_EQ(TreeLevels(16), 4);
  EXPECT_EQ(TreeLevels(17), 5);
}

TEST(MathTest, MomentAccumulatorBasics) {
  MomentAccumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(v);
  EXPECT_EQ(acc.count(), 8);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Population variance is 4; sample variance 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
}

TEST(MathTest, MomentAccumulatorSingle) {
  MomentAccumulator acc;
  acc.Add(3.5);
  EXPECT_EQ(acc.mean(), 3.5);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 3.5);
  EXPECT_EQ(acc.max(), 3.5);
}

TEST(MathTest, QuantileType7MatchesR) {
  // R: quantile(c(1,2,3,4), 0.25, type=7) == 1.75
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_NEAR(Quantile(v, 0.25), 1.75, 1e-12);
  EXPECT_NEAR(Quantile(v, 0.5), 2.5, 1e-12);
  EXPECT_NEAR(Quantile(v, 0.75), 3.25, 1e-12);
  EXPECT_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_EQ(Quantile(v, 1.0), 4.0);
}

TEST(MathTest, QuantileUnsortedInput) {
  std::vector<double> v = {9, 1, 5, 3, 7};
  EXPECT_EQ(Median(v), 5.0);
}

TEST(MathTest, QuantileEmpty) {
  EXPECT_EQ(Quantile({}, 0.5), 0.0);
}

TEST(MathTest, QuantileSingleton) {
  EXPECT_EQ(Quantile({3.0}, 0.025), 3.0);
  EXPECT_EQ(Quantile({3.0}, 0.975), 3.0);
}

TEST(MathTest, MeanAndMaxAbs) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_EQ(MaxAbs({}), 0.0);
  EXPECT_EQ(MaxAbs({-5, 3, 2}), 5.0);
}

}  // namespace
}  // namespace util
}  // namespace longdp
