#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace longdp {
namespace util {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, SplitMix64KnownValues) {
  // Reference values from the canonical SplitMix64 implementation with
  // seed state 0.
  uint64_t state = 0;
  EXPECT_EQ(SplitMix64Next(&state), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(SplitMix64Next(&state), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(SplitMix64Next(&state), 0x06C45D188009454FULL);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntRoughlyUniform) {
  Rng rng(13);
  const int kBuckets = 10, kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.UniformInt(kBuckets)];
  }
  // Each bucket expects 10000 with stdev ~95; allow 5 sigma.
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 500);
  }
}

TEST(RngTest, UniformIntZeroBoundReturnsZero) {
  // Regression: bound == 0 fed the Lemire rejection threshold a division
  // by zero (SIGFPE on x86). The documented empty-range behavior is 0,
  // with no draw consumed.
  Rng rng(61);
  Rng control(61);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(0), 0u);
  }
  EXPECT_EQ(rng.Next(), control.Next());  // stream position untouched
}

TEST(RngTest, UniformRangeInvertedClampsToLo) {
  // Regression: hi < lo underflowed the span; hi == lo - 1 produced
  // span == 0, which aliased the full-64-bit-range request and returned
  // arbitrary values far outside [hi, lo].
  Rng rng(67);
  Rng control(67);
  EXPECT_EQ(rng.UniformRange(5, 2), 5);
  EXPECT_EQ(rng.UniformRange(5, 4), 5);  // the span == 0 alias case
  EXPECT_EQ(rng.UniformRange(-3, -10), -3);
  EXPECT_EQ(rng.UniformRange(INT64_MAX, INT64_MIN), INT64_MAX);
  EXPECT_EQ(rng.Next(), control.Next());  // no draws consumed
}

TEST(RngTest, UniformRangeDegenerateAndFullRange) {
  Rng rng(71);
  EXPECT_EQ(rng.UniformRange(3, 3), 3);
  EXPECT_EQ(rng.UniformRange(-9, -9), -9);
  // The legitimate full-64-bit request still works (would hang or crash if
  // the clamp misclassified it).
  for (int i = 0; i < 4; ++i) {
    (void)rng.UniformRange(INT64_MIN, INT64_MAX);
  }
  // A span wider than 2^63 (signed hi - lo would overflow) stays in range.
  for (int i = 0; i < 100; ++i) {
    int64_t v = rng.UniformRange(INT64_MIN + 1, INT64_MAX - 1);
    EXPECT_GT(v, INT64_MIN);
    EXPECT_LT(v, INT64_MAX);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnit) {
  Rng rng(19);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int ones = 0;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Bernoulli(0.3)) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / kDraws, 0.3, 0.01);
}

TEST(RngTest, CoinIsFair) {
  Rng rng(31);
  int heads = 0;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Coin()) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / kDraws, 0.5, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(37);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(43);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {9};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{9});
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(47);
  for (size_t universe : {10UL, 100UL, 1000UL}) {
    for (size_t count : {0UL, 1UL, 5UL, universe / 2, universe}) {
      auto sample = rng.SampleWithoutReplacement(universe, count);
      EXPECT_EQ(sample.size(), count);
      std::set<size_t> distinct(sample.begin(), sample.end());
      EXPECT_EQ(distinct.size(), count);
      for (size_t idx : sample) EXPECT_LT(idx, universe);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementClampsCount) {
  Rng rng(53);
  auto sample = rng.SampleWithoutReplacement(5, 50);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(RngTest, SampleWithoutReplacementSameSeedSameOutputBothBranches) {
  // Same seed => identical output vector (values AND order), for both the
  // dense (Fisher-Yates) and sparse (Floyd) branches. The sparse branch
  // used to emit std::unordered_set iteration order, which differs across
  // standard libraries and silently broke cross-platform reproducibility.
  struct Case {
    size_t universe, count;
  };
  const Case cases[] = {
      {100, 60},   // dense: count * 3 >= universe
      {12, 4},     // dense boundary: count * 3 == universe
      {1000, 10},  // sparse
      {1000, 1},   // sparse, single draw
  };
  for (const Case& c : cases) {
    Rng a(97), b(97);
    EXPECT_EQ(a.SampleWithoutReplacement(c.universe, c.count),
              b.SampleWithoutReplacement(c.universe, c.count))
        << "universe=" << c.universe << " count=" << c.count;
  }
}

TEST(RngTest, SampleWithoutReplacementSparseBranchIsInsertionOrder) {
  // The sparse branch's contract: results appear in Floyd insertion order,
  // a pure function of the draw sequence. Replay the algorithm with an
  // identically seeded Rng and require an exact match — any dependence on
  // unordered_set layout would diverge.
  const size_t kUniverse = 5000, kCount = 25;  // firmly sparse
  Rng lib(101), replay(101);
  auto got = lib.SampleWithoutReplacement(kUniverse, kCount);
  std::vector<size_t> want;
  std::set<size_t> chosen;
  for (size_t j = kUniverse - kCount; j < kUniverse; ++j) {
    size_t t = static_cast<size_t>(replay.UniformInt(j + 1));
    if (chosen.insert(t).second) {
      want.push_back(t);
    } else {
      chosen.insert(j);
      want.push_back(j);
    }
  }
  EXPECT_EQ(got, want);
}

TEST(RngTest, SampleWithoutReplacementUnbiased) {
  // Each index should appear with probability count/universe.
  Rng rng(59);
  const size_t kUniverse = 20, kCount = 5;
  const int kTrials = 20000;
  std::vector<int> hits(kUniverse, 0);
  for (int trial = 0; trial < kTrials; ++trial) {
    for (size_t idx : rng.SampleWithoutReplacement(kUniverse, kCount)) {
      ++hits[idx];
    }
  }
  double expected = static_cast<double>(kTrials) * kCount / kUniverse;
  for (int h : hits) {
    EXPECT_NEAR(h, expected, 0.08 * expected);
  }
}

}  // namespace
}  // namespace util
}  // namespace longdp
