#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace longdp {
namespace util {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, SplitMix64KnownValues) {
  // Reference values from the canonical SplitMix64 implementation with
  // seed state 0.
  uint64_t state = 0;
  EXPECT_EQ(SplitMix64Next(&state), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(SplitMix64Next(&state), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(SplitMix64Next(&state), 0x06C45D188009454FULL);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntRoughlyUniform) {
  Rng rng(13);
  const int kBuckets = 10, kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.UniformInt(kBuckets)];
  }
  // Each bucket expects 10000 with stdev ~95; allow 5 sigma.
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 500);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnit) {
  Rng rng(19);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int ones = 0;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Bernoulli(0.3)) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / kDraws, 0.3, 0.01);
}

TEST(RngTest, CoinIsFair) {
  Rng rng(31);
  int heads = 0;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Coin()) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / kDraws, 0.5, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(37);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(43);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {9};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{9});
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(47);
  for (size_t universe : {10UL, 100UL, 1000UL}) {
    for (size_t count : {0UL, 1UL, 5UL, universe / 2, universe}) {
      auto sample = rng.SampleWithoutReplacement(universe, count);
      EXPECT_EQ(sample.size(), count);
      std::set<size_t> distinct(sample.begin(), sample.end());
      EXPECT_EQ(distinct.size(), count);
      for (size_t idx : sample) EXPECT_LT(idx, universe);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementClampsCount) {
  Rng rng(53);
  auto sample = rng.SampleWithoutReplacement(5, 50);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(RngTest, SampleWithoutReplacementUnbiased) {
  // Each index should appear with probability count/universe.
  Rng rng(59);
  const size_t kUniverse = 20, kCount = 5;
  const int kTrials = 20000;
  std::vector<int> hits(kUniverse, 0);
  for (int trial = 0; trial < kTrials; ++trial) {
    for (size_t idx : rng.SampleWithoutReplacement(kUniverse, kCount)) {
      ++hits[idx];
    }
  }
  double expected = static_cast<double>(kTrials) * kCount / kUniverse;
  for (int h : hits) {
    EXPECT_NEAR(h, expected, 0.08 * expected);
  }
}

}  // namespace
}  // namespace util
}  // namespace longdp
