// Correctness tests for the runtime-dispatched SIMD kernels against
// straight-line scalar references, on whatever backend this host selects.
// Bit-exactness across backends is the layer's contract (util/simd/simd.h);
// the forced-scalar CI job replays this same suite with
// LONGDP_FORCE_SCALAR=1, so a backend that diverges from the reference
// fails on both sides of the dispatch.

#include "util/simd/simd.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/substream.h"

namespace longdp {
namespace util {
namespace simd {
namespace {

TEST(SimdDispatchTest, ActiveLevelHasAName) {
  const IsaLevel level = ActiveIsaLevel();
  const std::string name = IsaLevelName(level);
  EXPECT_TRUE(name == "scalar" || name == "avx2" || name == "avx512")
      << name;
  if (ScalarForced()) {
    EXPECT_EQ(level, IsaLevel::kScalar);
  }
}

TEST(SimdFillStreamWordsTest, MatchesSubstreamNextAtEveryCount) {
  // SubstreamRng::FillWords routes through the kernel; a twin stream spun
  // word-by-word with Next() is the reference. Counts straddle the vector
  // block width on every backend (1..8 lanes per cycle).
  for (size_t count : {0u, 1u, 3u, 7u, 8u, 9u, 31u, 32u, 33u, 255u, 1024u}) {
    SubstreamRng batch(0xFEEDu, substream::kGeneric);
    SubstreamRng serial(0xFEEDu, substream::kGeneric);
    // Start mid-stream: the kernel must honor a nonzero cursor.
    for (int i = 0; i < 5; ++i) {
      batch.Next();
      serial.Next();
    }
    std::vector<uint64_t> got(count);
    batch.FillWords(got.data(), count);
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(got[i], serial.Next()) << "count=" << count << " i=" << i;
    }
    EXPECT_EQ(batch.cursor(), serial.cursor()) << "count=" << count;
  }
}

// Packs `bits[lane]` (0/1) into words, lane l at bit (l % 64) of word l/64.
std::vector<uint64_t> PackLanes(const std::vector<int>& bits) {
  std::vector<uint64_t> words((bits.size() + 63) / 64, 0);
  for (size_t l = 0; l < bits.size(); ++l) {
    if (bits[l]) words[l / 64] |= uint64_t{1} << (l % 64);
  }
  return words;
}

TEST(SimdPlaneHistogramTest, MatchesPerLaneReference) {
  SubstreamRng rng(0xB175u, substream::kGeneric);
  for (int num_planes : {1, 2, 5, 11, 16}) {
    for (size_t num_words : {1u, 2u, 7u}) {
      const size_t lanes = num_words * 64;
      // Random lane codes, decoded per lane for the reference histogram.
      std::vector<std::vector<int>> plane_bits(
          static_cast<size_t>(num_planes), std::vector<int>(lanes));
      std::vector<int> mask_bits(lanes);
      for (size_t l = 0; l < lanes; ++l) {
        for (int j = 0; j < num_planes; ++j) {
          plane_bits[static_cast<size_t>(j)][l] =
              static_cast<int>(rng.Next() & 1);
        }
        mask_bits[l] = static_cast<int>(rng.Next() & 1);
      }
      std::vector<std::vector<uint64_t>> plane_words;
      std::vector<const uint64_t*> planes;
      for (int j = 0; j < num_planes; ++j) {
        plane_words.push_back(PackLanes(plane_bits[static_cast<size_t>(j)]));
        planes.push_back(plane_words.back().data());
      }
      const std::vector<uint64_t> mask_words = PackLanes(mask_bits);

      for (bool masked : {false, true}) {
        std::vector<int64_t> expected(uint64_t{1} << num_planes, 0);
        for (size_t l = 0; l < lanes; ++l) {
          if (masked && !mask_bits[l]) continue;
          uint64_t code = 0;
          for (int j = 0; j < num_planes; ++j) {
            code |= static_cast<uint64_t>(
                        plane_bits[static_cast<size_t>(j)][l])
                    << j;
          }
          ++expected[code];
        }
        // The kernel accumulates (+=): seed with a sentinel baseline.
        std::vector<int64_t> hist(expected.size(), 3);
        PlaneHistogram(planes.data(), num_planes,
                       masked ? mask_words.data() : nullptr, num_words,
                       hist.data());
        for (size_t v = 0; v < expected.size(); ++v) {
          ASSERT_EQ(hist[v], expected[v] + 3)
              << "planes=" << num_planes << " words=" << num_words
              << " masked=" << masked << " v=" << v;
        }
      }
    }
  }
}

TEST(SimdPlaneAddTest, MatchesPerLaneRippleCarry) {
  SubstreamRng rng(0xADD5u, substream::kGeneric);
  for (int num_planes : {1, 3, 8, 13}) {
    for (size_t num_words : {1u, 4u}) {
      const size_t lanes = num_words * 64;
      std::vector<std::vector<uint64_t>> plane_words(
          static_cast<size_t>(num_planes), std::vector<uint64_t>(num_words));
      std::vector<uint64_t> addend(num_words);
      for (size_t w = 0; w < num_words; ++w) {
        for (int j = 0; j < num_planes; ++j) {
          plane_words[static_cast<size_t>(j)][w] = rng.Next();
        }
        addend[w] = rng.Next();
      }
      // Reference: decode, increment the addend lanes mod 2^p, re-encode.
      std::vector<uint64_t> expected_code(lanes);
      for (size_t l = 0; l < lanes; ++l) {
        uint64_t code = 0;
        for (int j = 0; j < num_planes; ++j) {
          code |= ((plane_words[static_cast<size_t>(j)][l / 64] >>
                    (l % 64)) &
                   1)
                  << j;
        }
        const uint64_t inc = (addend[l / 64] >> (l % 64)) & 1;
        expected_code[l] = (code + inc) & ((uint64_t{1} << num_planes) - 1);
      }
      std::vector<uint64_t*> planes;
      for (int j = 0; j < num_planes; ++j) {
        planes.push_back(plane_words[static_cast<size_t>(j)].data());
      }
      PlaneAdd(planes.data(), num_planes, addend.data(), num_words);
      for (size_t l = 0; l < lanes; ++l) {
        uint64_t code = 0;
        for (int j = 0; j < num_planes; ++j) {
          code |= ((plane_words[static_cast<size_t>(j)][l / 64] >>
                    (l % 64)) &
                   1)
                  << j;
        }
        ASSERT_EQ(code, expected_code[l])
            << "planes=" << num_planes << " words=" << num_words
            << " lane=" << l;
      }
    }
  }
}

}  // namespace
}  // namespace simd
}  // namespace util
}  // namespace longdp
