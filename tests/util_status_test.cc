#include "util/status.h"

#include <gtest/gtest.h>

namespace longdp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryOk) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad k");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad k");
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_FALSE(st.IsNotFound());
}

TEST(StatusTest, AllFactories) {
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
}

TEST(StatusTest, CopyPreservesState) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(b.code(), StatusCode::kInternal);
  EXPECT_EQ(b.message(), "boom");
}

TEST(StatusCodeTest, NamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r(7);
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

namespace {
Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> Doubled(int v) {
  LONGDP_ASSIGN_OR_RETURN(int x, ParsePositive(v));
  return 2 * x;
}

Status CheckPositive(int v) {
  LONGDP_RETURN_NOT_OK(ParsePositive(v).status());
  return Status::OK();
}
}  // namespace

TEST(ResultMacrosTest, AssignOrReturnPropagatesValue) {
  auto r = Doubled(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultMacrosTest, AssignOrReturnPropagatesError) {
  auto r = Doubled(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ResultMacrosTest, ReturnNotOk) {
  EXPECT_TRUE(CheckPositive(1).ok());
  EXPECT_FALSE(CheckPositive(0).ok());
}

}  // namespace
}  // namespace longdp
