#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

namespace longdp {
namespace util {
namespace {

TEST(ThreadPoolTest, ShardsPartitionTheRangeExactly) {
  for (int threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    ASSERT_EQ(pool.num_threads(), threads);
    for (int64_t n : {0, 1, 5, 63, 64, 65, 1000}) {
      std::vector<std::atomic<int>> touched(static_cast<size_t>(n));
      for (auto& t : touched) t = 0;
      pool.ParallelFor(n, [&](int, int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          touched[static_cast<size_t>(i)].fetch_add(1);
        }
      });
      for (int64_t i = 0; i < n; ++i) {
        EXPECT_EQ(touched[static_cast<size_t>(i)].load(), 1)
            << "threads=" << threads << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, ShardBoundsAreTheFixedContiguousPartition) {
  // The determinism contract: shard s covers exactly [s*n/P, (s+1)*n/P),
  // regardless of scheduling.
  const int kThreads = 4;
  const int64_t kN = 103;
  ThreadPool pool(kThreads);
  std::vector<std::pair<int64_t, int64_t>> ranges(kThreads);
  pool.ParallelFor(kN, [&](int shard, int64_t begin, int64_t end) {
    ranges[static_cast<size_t>(shard)] = {begin, end};
  });
  for (int s = 0; s < kThreads; ++s) {
    EXPECT_EQ(ranges[static_cast<size_t>(s)].first, s * kN / kThreads);
    EXPECT_EQ(ranges[static_cast<size_t>(s)].second,
              (s + 1) * kN / kThreads);
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyDispatches) {
  // The observe phase calls the pool once or twice per round; make sure
  // repeated dispatches on one pool neither deadlock nor drop work.
  ThreadPool pool(4);
  std::vector<int64_t> data(1024, 0);
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(static_cast<int64_t>(data.size()),
                     [&](int, int64_t begin, int64_t end) {
                       for (int64_t i = begin; i < end; ++i) {
                         ++data[static_cast<size_t>(i)];
                       }
                     });
  }
  for (int64_t v : data) EXPECT_EQ(v, 200);
}

TEST(ThreadPoolTest, ShardedForInlineWhenSerial) {
  // Null pool and single-thread pool both run one inline shard.
  std::vector<std::pair<int64_t, int64_t>> calls;
  ShardedFor(nullptr, 10, [&](int shard, int64_t begin, int64_t end) {
    EXPECT_EQ(shard, 0);
    calls.emplace_back(begin, end);
  });
  ThreadPool one(1);
  ShardedFor(&one, 7, [&](int shard, int64_t begin, int64_t end) {
    EXPECT_EQ(shard, 0);
    calls.emplace_back(begin, end);
  });
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[0], (std::pair<int64_t, int64_t>{0, 10}));
  EXPECT_EQ(calls[1], (std::pair<int64_t, int64_t>{0, 7}));
  EXPECT_EQ(NumShards(nullptr), 1);
  EXPECT_EQ(NumShards(&one), 1);
}

TEST(ThreadPoolTest, ShardedReductionMatchesSerialSum) {
  // The usage pattern every synthesizer relies on: per-shard scratch,
  // reduced in shard order, equals the serial result exactly.
  const int64_t kN = 10007;
  std::vector<int64_t> values(static_cast<size_t>(kN));
  std::iota(values.begin(), values.end(), 1);
  const int64_t want = kN * (kN + 1) / 2;
  for (int threads : {2, 3, 8}) {
    ThreadPool pool(threads);
    std::vector<int64_t> partial(static_cast<size_t>(threads), 0);
    pool.ParallelFor(kN, [&](int shard, int64_t begin, int64_t end) {
      int64_t sum = 0;
      for (int64_t i = begin; i < end; ++i) {
        sum += values[static_cast<size_t>(i)];
      }
      partial[static_cast<size_t>(shard)] = sum;
    });
    int64_t total = 0;
    for (int64_t p : partial) total += p;
    EXPECT_EQ(total, want) << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, ClampsNonPositiveThreadCounts) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
  int64_t sum = 0;
  zero.ParallelFor(5, [&](int, int64_t begin, int64_t end) {
    sum += end - begin;
  });
  EXPECT_EQ(sum, 5);
}

}  // namespace
}  // namespace util
}  // namespace longdp
