// Compares two bench JSON reports (harness::BenchReport files emitted via
// --json) and exits nonzero when any per-series value drifts beyond the
// tolerance — the mechanical "no regression" check CI and perf PRs run
// against the stored baseline. Self-compare mode (same file twice) doubles
// as a validation pass that a freshly emitted report parses.
//
// Usage:
//   bench_diff BASELINE.json CANDIDATE.json [--tol=1e-9] [--abs_tol=0]
//              [--ignore=key1,key2] [--max_print=20]
//
// A value pair (a, b) passes when |a - b| <= abs_tol + tol * max(|a|, |b|)
// (NaN matches NaN, same-signed infinities match). Wall-clock phases and
// any value key listed in --ignore (e.g. --ignore=ms_per_run for
// time-valued series) are excluded. Exit codes: 0 = within tolerance,
// 1 = out-of-tolerance delta, 2 = structural mismatch or load failure.

#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/flags.h"
#include "harness/report.h"
#include "harness/table.h"
#include "util/json.h"

namespace longdp {
namespace {

using harness::BenchReport;

struct Violation {
  std::string series;
  std::string row;
  std::string key;
  double a = 0.0;
  double b = 0.0;
};

std::string RowKey(const BenchReport::Row& row) {
  std::ostringstream out;
  for (size_t i = 0; i < row.labels.size(); ++i) {
    if (i) out << ", ";
    out << row.labels[i].first << "=" << row.labels[i].second;
  }
  return out.str();
}

bool Matches(double a, double b, double rel_tol, double abs_tol,
             double* delta) {
  *delta = 0.0;
  if (std::isnan(a) && std::isnan(b)) return true;
  if (std::isinf(a) || std::isinf(b)) {
    if (a == b) return true;
    *delta = HUGE_VAL;
    return false;
  }
  *delta = std::fabs(a - b);
  return *delta <= abs_tol + rel_tol * std::max(std::fabs(a), std::fabs(b));
}

bool Ignored(const std::vector<std::string>& ignore, const std::string& key) {
  for (const auto& k : ignore) {
    if (k == key) return true;
  }
  return false;
}

int RunDiff(const harness::Flags& flags) {
  if (flags.positional().size() != 2) {
    std::cerr << "usage: bench_diff BASELINE.json CANDIDATE.json"
                 " [--tol=1e-9] [--abs_tol=0] [--ignore=key1,key2]"
                 " [--max_print=20]\n";
    return 2;
  }
  const double rel_tol = flags.GetDouble("tol", 1e-9);
  const double abs_tol = flags.GetDouble("abs_tol", 0.0);
  const int64_t max_print = flags.GetInt("max_print", 20);
  std::vector<std::string> ignore;
  {
    std::string raw = flags.GetString("ignore", "");
    std::istringstream in(raw);
    std::string tok;
    while (std::getline(in, tok, ',')) {
      if (!tok.empty()) ignore.push_back(tok);
    }
  }

  auto a_result = BenchReport::FromJsonFile(flags.positional()[0]);
  if (!a_result.ok()) {
    std::cerr << "bench_diff: " << flags.positional()[0] << ": "
              << a_result.status().ToString() << "\n";
    return 2;
  }
  auto b_result = BenchReport::FromJsonFile(flags.positional()[1]);
  if (!b_result.ok()) {
    std::cerr << "bench_diff: " << flags.positional()[1] << ": "
              << b_result.status().ToString() << "\n";
    return 2;
  }
  const BenchReport& a = a_result.value();
  const BenchReport& b = b_result.value();

  std::cout << "baseline : " << flags.positional()[0] << " (bench "
            << a.bench_name() << ")\n"
            << "candidate: " << flags.positional()[1] << " (bench "
            << b.bench_name() << ")\n"
            << "tolerance: |a-b| <= " << abs_tol << " + " << rel_tol
            << " * max(|a|,|b|)\n\n";

  if (a.bench_name() != b.bench_name()) {
    std::cout << "note: comparing reports from different benches\n";
  }
  // Per-phase wall-clock deltas are surfaced but never gated: timing is
  // machine- and load-dependent, so the mechanical gate below is accuracy
  // only. speedup > 1 means the candidate phase got faster.
  if (!a.phases().empty() || !b.phases().empty()) {
    harness::Table phases(
        {"phase", "baseline_s", "candidate_s", "speedup"});
    for (const auto& pa : a.phases()) {
      const double* cand = nullptr;
      for (const auto& pb : b.phases()) {
        if (pb.name == pa.name) {
          cand = &pb.seconds;
          break;
        }
      }
      harness::Table::Cell cand_cell =
          cand ? harness::Table::Val(*cand) : harness::Table::Cell("-");
      harness::Table::Cell speedup_cell =
          (cand && *cand > 0.0)
              ? harness::Table::Val(pa.seconds / *cand, 2)
              : harness::Table::Cell("-");
      Status st = phases.AddRow({pa.name, harness::Table::Val(pa.seconds),
                                 cand_cell, speedup_cell});
      if (!st.ok()) {
        std::cerr << "bench_diff: " << st.ToString() << "\n";
        return 2;
      }
    }
    for (const auto& pb : b.phases()) {
      bool in_baseline = false;
      for (const auto& pa : a.phases()) {
        if (pa.name == pb.name) {
          in_baseline = true;
          break;
        }
      }
      if (!in_baseline) {
        Status st = phases.AddRow({pb.name, "-",
                                   harness::Table::Val(pb.seconds), "-"});
        if (!st.ok()) {
          std::cerr << "bench_diff: " << st.ToString() << "\n";
          return 2;
        }
      }
    }
    std::cout << "per-phase wall-clock (informational, not gated):\n";
    phases.Print(std::cout);
    std::cout << "\n";
  }
  // Param drift is informational: a baseline recorded at other n/rho is a
  // configuration problem, not a numeric regression.
  for (const auto& pa : a.params()) {
    for (const auto& pb : b.params()) {
      if (pa.key == pb.key && pa.text != pb.text) {
        std::cout << "note: param " << pa.key << " differs: " << pa.text
                  << " vs " << pb.text << "\n";
      }
    }
  }

  bool structural_mismatch = false;
  std::vector<Violation> violations;
  harness::Table summary(
      {"series", "rows", "values", "max|delta|", "out_of_tol"});

  for (const auto& sa : a.series()) {
    const BenchReport::Series* sb = b.FindSeries(sa.name);
    if (sb == nullptr) {
      std::cout << "MISSING: series \"" << sa.name
                << "\" absent from candidate\n";
      structural_mismatch = true;
      continue;
    }
    if (sb->rows.size() != sa.rows.size()) {
      std::cout << "MISMATCH: series \"" << sa.name << "\" has "
                << sa.rows.size() << " baseline rows vs "
                << sb->rows.size() << " candidate rows\n";
      structural_mismatch = true;
      continue;
    }
    double max_delta = 0.0;
    int64_t values_compared = 0;
    int64_t out_of_tol = 0;
    for (size_t r = 0; r < sa.rows.size(); ++r) {
      const auto& ra = sa.rows[r];
      const auto& rb = sb->rows[r];
      if (ra.labels != rb.labels) {
        std::cout << "MISMATCH: series \"" << sa.name << "\" row " << r
                  << " labels differ: {" << RowKey(ra) << "} vs {"
                  << RowKey(rb) << "}\n";
        structural_mismatch = true;
        continue;
      }
      for (const auto& [key, va] : ra.values) {
        if (Ignored(ignore, key)) continue;
        const double* vb = nullptr;
        for (const auto& [kb, v] : rb.values) {
          if (kb == key) {
            vb = &v;
            break;
          }
        }
        if (vb == nullptr) {
          std::cout << "MISMATCH: series \"" << sa.name << "\" row {"
                    << RowKey(ra) << "} lacks value \"" << key
                    << "\" in candidate\n";
          structural_mismatch = true;
          continue;
        }
        ++values_compared;
        double delta = 0.0;
        if (!Matches(va, *vb, rel_tol, abs_tol, &delta)) {
          ++out_of_tol;
          violations.push_back(Violation{sa.name, RowKey(ra), key, va, *vb});
        }
        max_delta = std::max(max_delta, delta);
      }
      // Symmetric structural check: a metric added only in the candidate
      // must fail too, or it would never be gated against the baseline.
      for (const auto& [key, vb] : rb.values) {
        if (Ignored(ignore, key)) continue;
        bool in_baseline = false;
        for (const auto& [ka, v] : ra.values) {
          if (ka == key) {
            in_baseline = true;
            break;
          }
        }
        if (!in_baseline) {
          std::cout << "MISMATCH: series \"" << sa.name << "\" row {"
                    << RowKey(ra) << "} lacks value \"" << key
                    << "\" in baseline\n";
          structural_mismatch = true;
        }
      }
    }
    Status st = summary.AddRow(
        {sa.name, std::to_string(sa.rows.size()),
         std::to_string(values_compared),
         util::FormatDoubleRoundTrip(max_delta),
         std::to_string(out_of_tol)});
    if (!st.ok()) {
      std::cerr << "bench_diff: " << st.ToString() << "\n";
      return 2;
    }
  }
  for (const auto& sb : b.series()) {
    if (a.FindSeries(sb.name) == nullptr) {
      std::cout << "MISSING: series \"" << sb.name
                << "\" absent from baseline\n";
      structural_mismatch = true;
    }
  }

  summary.Print(std::cout);
  std::cout << "\n";

  if (!violations.empty()) {
    std::cout << violations.size() << " value(s) out of tolerance";
    if (static_cast<int64_t>(violations.size()) > max_print) {
      std::cout << " (showing first " << max_print << ")";
    }
    std::cout << ":\n";
    int64_t shown = 0;
    for (const auto& v : violations) {
      if (shown++ >= max_print) break;
      std::cout << "  " << v.series << " {" << v.row << "} " << v.key
                << ": " << util::FormatDoubleRoundTrip(v.a) << " -> "
                << util::FormatDoubleRoundTrip(v.b)
                << " (|delta| = " << util::FormatDoubleRoundTrip(
                       std::fabs(v.a - v.b))
                << ")\n";
    }
  }

  if (structural_mismatch) {
    std::cout << "RESULT: structural mismatch\n";
    return 2;
  }
  if (!violations.empty()) {
    std::cout << "RESULT: out of tolerance\n";
    return 1;
  }
  std::cout << "RESULT: reports match within tolerance\n";
  return 0;
}

}  // namespace
}  // namespace longdp

int main(int argc, char** argv) {
  auto flags = longdp::harness::Flags::Parse(argc, argv);
  return longdp::RunDiff(flags);
}
