#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace longdp {
namespace lint {
namespace {

// ---------------------------------------------------------------------------
// Rule names
// ---------------------------------------------------------------------------

constexpr char kRuleRawRng[] = "longdp-no-raw-rng";
constexpr char kRuleUnorderedIter[] = "longdp-no-unordered-iteration";
constexpr char kRuleNoiseViaDp[] = "longdp-noise-via-dp";
constexpr char kRuleStatusChecked[] = "longdp-status-checked";
constexpr char kRuleSubstream[] = "longdp-substream-discipline";
constexpr char kRuleSimdContained[] = "longdp-simd-contained";
constexpr char kRuleNolintJustify[] = "longdp-nolint-needs-justification";

// ---------------------------------------------------------------------------
// Lexer: identifiers / numbers / punctuation with line numbers, comments
// collected on the side. Strings and char literals are consumed (their
// contents must not trigger rules); `::` and `->` are fused so qualifier
// chains are easy to walk.
// ---------------------------------------------------------------------------

struct Token {
  enum Kind { kIdent, kNumber, kPunct } kind = kPunct;
  std::string text;
  int line = 0;
};

struct Comment {
  int line = 0;  // line the comment ends on (== starts on, for // comments)
  std::string text;
};

struct LexedFile {
  std::string path;          // forward-slash form, for exemption matching
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

LexedFile Lex(const std::string& path, const std::string& src) {
  LexedFile out;
  out.path = path;
  int line = 1;
  const size_t n = src.size();
  size_t i = 0;
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      size_t end = src.find('\n', i);
      if (end == std::string::npos) end = n;
      out.comments.push_back({line, src.substr(i + 2, end - i - 2)});
      i = end;
      continue;
    }
    // Block comment; recorded at its *end* line so NOLINTNEXTLINE semantics
    // ("the marker sits on the line above the code") hold for both styles.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      size_t j = i + 2;
      std::string text;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        text.push_back(src[j]);
        ++j;
      }
      out.comments.push_back({line, text});
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }
    // Raw string literal (possibly preceded by an encoding prefix handled
    // via the identifier path below falling through — we only special-case
    // the common R"( form).
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim.push_back(src[j++]);
      const std::string closer = ")" + delim + "\"";
      size_t end = src.find(closer, j);
      if (end == std::string::npos) end = n;
      for (size_t k = i; k < std::min(end, n); ++k) {
        if (src[k] == '\n') ++line;
      }
      i = std::min(n, end + closer.size());
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') ++line;  // unterminated; keep line count honest
        ++j;
      }
      i = (j < n) ? j + 1 : n;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(src[j])) ++j;
      out.tokens.push_back({Token::kIdent, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && (IsIdentChar(src[j]) || src[j] == '.' ||
                       src[j] == '\'')) {
        ++j;
      }
      out.tokens.push_back({Token::kNumber, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation; fuse :: and -> for qualifier-chain walking.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.tokens.push_back({Token::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      out.tokens.push_back({Token::kPunct, "->", line});
      i += 2;
      continue;
    }
    out.tokens.push_back({Token::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Pass 1: project-wide declaration context
// ---------------------------------------------------------------------------

struct ProjectContext {
  // Function names declared with return type Status (any qualification).
  std::set<std::string> status_fns;
  // Variable / member names declared with an unordered container type.
  std::set<std::string> unordered_vars;
  // Type names that denote unordered containers (the two std names plus
  // `using X = std::unordered_map<...>` aliases found in pass 1).
  std::set<std::string> unordered_types = {"unordered_map", "unordered_set",
                                           "unordered_multimap",
                                           "unordered_multiset"};
};

bool TokIs(const std::vector<Token>& t, size_t i, const char* text) {
  return i < t.size() && t[i].text == text;
}
bool TokIsIdent(const std::vector<Token>& t, size_t i) {
  return i < t.size() && t[i].kind == Token::kIdent;
}

// Returns the index just past the matching closer, treating `<` at t[i] as
// an opener. Gives up (returns i + 1) on suspicious nesting so expression
// uses of `<` cannot send the scan off a cliff.
size_t SkipAngles(const std::vector<Token>& t, size_t i) {
  int depth = 0;
  size_t j = i;
  const size_t limit = std::min(t.size(), i + 400);
  for (; j < limit; ++j) {
    if (t[j].text == "<") ++depth;
    if (t[j].text == ">") {
      --depth;
      if (depth == 0) return j + 1;
    }
    if (t[j].text == ";") break;  // a declaration never crosses one
  }
  return i + 1;
}

// Returns the index just past the `)` matching the `(` at t[i].
size_t SkipParens(const std::vector<Token>& t, size_t i) {
  int depth = 0;
  for (size_t j = i; j < t.size(); ++j) {
    if (t[j].text == "(") ++depth;
    if (t[j].text == ")") {
      --depth;
      if (depth == 0) return j + 1;
    }
  }
  return t.size();
}

void CollectDeclarations(const LexedFile& file, ProjectContext* ctx) {
  const std::vector<Token>& t = file.tokens;
  // `using X = ... unordered_map ... ;` registers alias X.
  for (size_t i = 0; i + 3 < t.size(); ++i) {
    if (!(TokIs(t, i, "using") && TokIsIdent(t, i + 1) &&
          TokIs(t, i + 2, "="))) {
      continue;
    }
    for (size_t j = i + 3; j < t.size() && !TokIs(t, j, ";"); ++j) {
      if (t[j].kind == Token::kIdent &&
          ctx->unordered_types.count(t[j].text)) {
        ctx->unordered_types.insert(t[i + 1].text);
        break;
      }
    }
  }
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::kIdent) continue;
    // `Status Name(` → Name returns Status. (A direct-initialized local
    // `Status st(...)` is also collected; a bare statement `st(...)` does
    // not occur in practice, so the over-approximation is harmless.)
    if (t[i].text == "Status" && TokIsIdent(t, i + 1) &&
        TokIs(t, i + 2, "(")) {
      ctx->status_fns.insert(t[i + 1].text);
      continue;
    }
    // `unordered_map<...> name` (or an alias) → name holds an unordered
    // container. `unordered_map<...>::iterator` and friends are skipped.
    if (ctx->unordered_types.count(t[i].text)) {
      size_t j = i + 1;
      if (TokIs(t, j, "<")) j = SkipAngles(t, j);
      while (TokIs(t, j, "&") || TokIs(t, j, "*") || TokIs(t, j, "const")) {
        ++j;
      }
      if (TokIsIdent(t, j) && !TokIs(t, j - 1, "::")) {
        ctx->unordered_vars.insert(t[j].text);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 2: rules
// ---------------------------------------------------------------------------

bool PathContains(const std::string& path, const std::string& sub) {
  return path.find(sub) != std::string::npos;
}

bool RuleExempt(const std::string& rule, const std::string& path,
                const Options& options) {
  if (rule == kRuleRawRng &&
      (PathContains(path, "src/util/rng.h") ||
       PathContains(path, "src/util/rng.cc"))) {
    return true;
  }
  if (rule == kRuleNoiseViaDp && PathContains(path, "src/dp/")) return true;
  if (rule == kRuleSubstream &&
      (PathContains(path, "src/util/rng.h") ||
       PathContains(path, "src/util/rng.cc") ||
       PathContains(path, "src/util/substream") ||
       PathContains(path, "tests/util_rng_test") ||
       PathContains(path, "tests/util_batch_sampler_test") ||
       PathContains(path, "tests/sampling_statistical_test") ||
       PathContains(path, "bench/micro_primitives"))) {
    return true;
  }
  if (rule == kRuleSimdContained && PathContains(path, "src/util/simd")) {
    return true;
  }
  for (const auto& [r, sub] : options.allow) {
    if (r == rule && PathContains(path, sub)) return true;
  }
  return false;
}

bool RuleEnabled(const std::string& rule, const Options& options) {
  if (options.rules.empty()) return true;
  return std::find(options.rules.begin(), options.rules.end(), rule) !=
         options.rules.end();
}

void CheckRawRng(const LexedFile& file, std::vector<Finding>* findings) {
  static const std::set<std::string> kEngines = {
      "random_device", "mt19937",      "mt19937_64",
      "minstd_rand",   "minstd_rand0", "default_random_engine",
      "ranlux24",      "ranlux48",     "knuth_b"};
  const std::vector<Token>& t = file.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::kIdent) continue;
    const std::string& s = t[i].text;
    if (kEngines.count(s)) {
      findings->push_back(
          {file.path, t[i].line, kRuleRawRng,
           "raw RNG '" + s + "'; draw through util::Rng instead"});
      continue;
    }
    if (s == "srand" || (s == "rand" && i >= 2 && TokIs(t, i - 1, "::") &&
                         TokIs(t, i - 2, "std"))) {
      findings->push_back({file.path, t[i].line, kRuleRawRng,
                           "C library RNG '" + s +
                               "'; draw through util::Rng instead"});
      continue;
    }
    if (s == "time" && TokIs(t, i + 1, "(") &&
        (TokIs(t, i + 2, "nullptr") || TokIs(t, i + 2, "NULL") ||
         TokIs(t, i + 2, "0")) &&
        TokIs(t, i + 3, ")")) {
      findings->push_back({file.path, t[i].line, kRuleRawRng,
                           "wall-clock seeding 'time(...)'; seeds must be "
                           "explicit and reproducible"});
      continue;
    }
    // `clock()` — the classic srand(clock()) seeding idiom. Qualified
    // `steady_clock::now()` etc. are NOT flagged: <chrono> timing is how
    // the bench harness measures phases and carries no RNG state.
    if (s == "clock" && TokIs(t, i + 1, "(") && TokIs(t, i + 2, ")")) {
      findings->push_back({file.path, t[i].line, kRuleRawRng,
                           "wall-clock seeding 'clock()'; seeds must be "
                           "explicit and reproducible"});
    }
  }
}

void CheckNoiseViaDp(const LexedFile& file, std::vector<Finding>* findings) {
  static const std::set<std::string> kDists = {"normal_distribution",
                                               "geometric_distribution"};
  for (const Token& tok : file.tokens) {
    if (tok.kind == Token::kIdent && kDists.count(tok.text)) {
      findings->push_back(
          {file.path, tok.line, kRuleNoiseViaDp,
           "'" + tok.text +
               "' outside src/dp/; privacy noise must come from a dp:: "
               "mechanism charged to the accountant"});
    }
  }
}

void CheckSimdContained(const LexedFile& file,
                        std::vector<Finding>* findings) {
  // Vendor intrinsic surface: _mm*/__m* identifiers and the *intrin.h
  // family of headers (immintrin, x86intrin, emmintrin, ...). The include
  // line lexes to plain tokens, so the header name is just an identifier.
  static const std::vector<std::string> kPrefixes = {
      "_mm_",   "_mm256_", "_mm512_", "__m128",
      "__m256", "__m512",  "__mmask"};
  for (const Token& tok : file.tokens) {
    if (tok.kind != Token::kIdent) continue;
    const std::string& s = tok.text;
    bool hit = false;
    for (const std::string& p : kPrefixes) {
      if (s.compare(0, p.size(), p) == 0) {
        hit = true;
        break;
      }
    }
    if (!hit && s.size() >= 6 &&
        s.compare(s.size() - 6, 6, "intrin") == 0) {
      hit = true;  // immintrin / x86intrin / emmintrin / ... header names
    }
    if (!hit && s == "arm_neon") hit = true;
    if (hit) {
      findings->push_back(
          {file.path, tok.line, kRuleSimdContained,
           "raw SIMD '" + s +
               "' outside src/util/simd/; call the runtime-dispatched "
               "kernels in util/simd/simd.h so the forced-scalar build "
               "stays bit-identical"});
    }
  }
}

void CheckUnorderedIteration(const LexedFile& file,
                             const ProjectContext& ctx,
                             std::vector<Finding>* findings) {
  const std::vector<Token>& t = file.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    // Range-for whose range expression mentions an unordered variable or
    // constructs an unordered container inline.
    if (TokIs(t, i, "for") && TokIs(t, i + 1, "(")) {
      const size_t close = SkipParens(t, i + 1);
      int depth = 0;
      size_t colon = 0;
      for (size_t j = i + 1; j + 1 < close; ++j) {
        if (t[j].text == "(" || t[j].text == "[") ++depth;
        if (t[j].text == ")" || t[j].text == "]") --depth;
        if (depth == 1 && t[j].text == ":" && j > i + 1) {
          colon = j;
          break;
        }
      }
      if (colon == 0) continue;
      for (size_t j = colon + 1; j + 1 < close; ++j) {
        if (t[j].kind == Token::kIdent &&
            (ctx.unordered_vars.count(t[j].text) ||
             ctx.unordered_types.count(t[j].text))) {
          findings->push_back(
              {file.path, t[i].line, kRuleUnorderedIter,
               "range-for over unordered container '" + t[j].text +
                   "'; iteration order is stdlib-dependent and breaks "
                   "bit-reproducibility"});
          break;
        }
      }
      continue;
    }
    // Iterator harvesting: var.begin() / var->cbegin() / std::begin(var).
    if (t[i].kind == Token::kIdent && ctx.unordered_vars.count(t[i].text)) {
      if ((TokIs(t, i + 1, ".") || TokIs(t, i + 1, "->")) &&
          (TokIs(t, i + 2, "begin") || TokIs(t, i + 2, "cbegin") ||
           TokIs(t, i + 2, "rbegin")) &&
          TokIs(t, i + 3, "(")) {
        findings->push_back(
            {file.path, t[i].line, kRuleUnorderedIter,
             "iterator over unordered container '" + t[i].text +
                 "'; iteration order is stdlib-dependent and breaks "
                 "bit-reproducibility"});
      }
      if (i >= 2 && TokIs(t, i - 1, "(") &&
          (TokIs(t, i - 2, "begin") || TokIs(t, i - 2, "cbegin")) &&
          TokIs(t, i + 1, ")")) {
        findings->push_back(
            {file.path, t[i].line, kRuleUnorderedIter,
             "iterator over unordered container '" + t[i].text +
                 "'; iteration order is stdlib-dependent and breaks "
                 "bit-reproducibility"});
      }
    }
  }
}

// Direct construction of the mutable xoshiro engine outside the engine /
// substream sources: `Rng name(...)`, `Rng name{...}`, `Rng name;` and
// temporaries `Rng(...)`. Pointer / reference parameters (`Rng*`, `Rng&`),
// qualifications (`Rng::`), template arguments (`<Rng>`), and
// `class Rng` / `~Rng` declarations stay legal — code may *consume* an
// engine handed to it, but only the substream factory may mint one, so
// every draw keeps a (seed, purpose, shard, round, draw) address.
// SubstreamRng lexes as a distinct identifier and is never flagged.
void CheckSubstreamDiscipline(const LexedFile& file,
                              std::vector<Finding>* findings) {
  const std::vector<Token>& t = file.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::kIdent || t[i].text != "Rng") continue;
    if (i > 0) {
      const std::string& prev = t[i - 1].text;
      if (prev == "class" || prev == "struct" || prev == "friend" ||
          prev == "~" || prev == "enum") {
        continue;
      }
    }
    const bool decl = TokIsIdent(t, i + 1);           // Rng name...
    const bool temp = TokIs(t, i + 1, "(");           // Rng(...)
    if (!decl && !temp) continue;
    // `Rng name(` where name is immediately called could also be a
    // function declaration returning Rng — equally a discipline breach
    // outside the engine sources (only Fork() qualifies, and it lives in
    // the exempt rng.h).
    findings->push_back(
        {file.path, t[i].line, kRuleSubstream,
         "direct construction of util::Rng; derive a keyed "
         "util::SubstreamRng (seed, purpose) instead so draws stay "
         "addressable and shard-invariant"});
  }
}

// Walks a qualifier/member chain leftward from the token *before* the call
// name: `a.b::c->Name(` → index of `a`. Crosses one level of balanced
// parens so `MakeThing().Save(` resolves to the chain head.
size_t ChainStart(const std::vector<Token>& t, size_t name_idx) {
  size_t j = name_idx;
  while (j >= 2) {
    const std::string& sep = t[j - 1].text;
    if (sep != "." && sep != "->" && sep != "::") break;
    if (t[j - 2].kind == Token::kIdent) {
      j -= 2;
      continue;
    }
    if (t[j - 2].text == ")") {
      // Find the matching open paren, then the identifier before it.
      int depth = 0;
      size_t k = j - 2;
      while (true) {
        if (t[k].text == ")") ++depth;
        if (t[k].text == "(") {
          --depth;
          if (depth == 0) break;
        }
        if (k == 0) return j;
        --k;
      }
      if (k >= 1 && t[k - 1].kind == Token::kIdent) {
        j = k - 1;
        continue;
      }
      return j;
    }
    break;
  }
  return j;
}

void CheckStatusDiscarded(const LexedFile& file, const ProjectContext& ctx,
                          std::vector<Finding>* findings) {
  const std::vector<Token>& t = file.tokens;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::kIdent || !TokIs(t, i + 1, "(")) continue;
    if (!ctx.status_fns.count(t[i].text)) continue;
    const size_t start = ChainStart(t, i);
    // Only statement-initial calls are discards; anything consumed by an
    // operator, initializer, return, or macro argument has a non-";{}"
    // token in front of its chain.
    bool statement_initial = false;
    if (start == 0) {
      statement_initial = true;
    } else {
      const std::string& prev = t[start - 1].text;
      statement_initial = prev == ";" || prev == "{" || prev == "}" ||
                          prev == "else" || prev == ")";
      // `)` covers `if (...) Save(x);` and the (void)-cast escape hatch —
      // both are policy violations — but also matches harmless non-call
      // contexts; require the call result to hit `;` below either way.
    }
    if (!statement_initial) continue;
    const size_t after = SkipParens(t, i + 1);
    if (!TokIs(t, after, ";")) continue;  // chained / consumed result
    findings->push_back(
        {file.path, t[i].line, kRuleStatusChecked,
         "result of Status-returning call '" + t[i].text +
             "(...)' is discarded; check it or propagate with "
             "LONGDP_RETURN_NOT_OK"});
  }
}

// ---------------------------------------------------------------------------
// NOLINT suppression with mandatory justification
// ---------------------------------------------------------------------------

struct Suppression {
  int line = 0;              // line of the comment carrying the marker
  int target_line = 0;       // line whose findings it suppresses
  std::vector<std::string> rules;
  bool justified = false;
  bool blanket = false;      // NOLINT with no (rule-list) at all
};

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

void ParseNolint(const Comment& comment, const char* marker, int target_line,
                 std::vector<Suppression>* out) {
  // A directive is the comment: "// NOLINT..." with nothing but whitespace
  // before the marker. Prose that merely *mentions* NOLINT mid-sentence
  // (doc comments about this very policy) is not a directive.
  size_t pos = comment.text.find(marker);
  if (pos == std::string::npos) return;
  if (!Trim(comment.text.substr(0, pos)).empty()) return;
  const size_t after = pos + std::string(marker).size();
  // A bare "NOLINT" inside "NOLINTNEXTLINE" belongs to the other marker.
  if (comment.text.compare(after, 8, "NEXTLINE") == 0) return;
  size_t open = comment.text.find('(', pos);
  if (open == std::string::npos ||
      !Trim(comment.text.substr(after, open - after)).empty()) {
    // No (rule-list) directly after the marker. "// NOLINT" alone or
    // "// NOLINT: why" is a blanket suppression — always a policy
    // violation, it must name the rule it waves through. A comment that
    // continues with prose ("// NOLINT markers are parsed here") is
    // documentation, not a directive.
    std::string tail = Trim(comment.text.substr(after));
    if (tail.empty() || tail[0] == ':' || tail[0] == '-') {
      Suppression blanket;
      blanket.line = comment.line;
      blanket.target_line = target_line;
      blanket.blanket = true;
      out->push_back(std::move(blanket));
    }
    return;
  }
  size_t close = comment.text.find(')', open);
  if (close == std::string::npos) return;
  Suppression sup;
  sup.line = comment.line;
  sup.target_line = target_line;
  std::istringstream in(comment.text.substr(open + 1, close - open - 1));
  std::string rule;
  while (std::getline(in, rule, ',')) {
    rule = Trim(rule);
    if (!rule.empty()) sup.rules.push_back(rule);
  }
  // Justification: any real text after the closing paren, past separators.
  std::string tail = Trim(comment.text.substr(close + 1));
  while (!tail.empty() && (tail[0] == ':' || tail[0] == '-')) {
    tail = Trim(tail.substr(1));
  }
  sup.justified = tail.size() >= 3;
  out->push_back(std::move(sup));
}

std::vector<Finding> ApplySuppressions(const LexedFile& file,
                                       std::vector<Finding> findings) {
  std::vector<Suppression> sups;
  for (const Comment& c : file.comments) {
    ParseNolint(c, "NOLINTNEXTLINE", c.line + 1, &sups);
    ParseNolint(c, "NOLINT", c.line, &sups);
  }
  std::vector<Finding> kept;
  std::set<int> unjustified_reported;
  for (Finding& f : findings) {
    bool suppressed = false;
    for (const Suppression& sup : sups) {
      if (sup.target_line != f.line) continue;
      if (std::find(sup.rules.begin(), sup.rules.end(), f.rule) ==
          sup.rules.end()) {
        continue;
      }
      if (sup.justified) {
        suppressed = true;
        break;
      }
      if (unjustified_reported.insert(sup.line).second) {
        kept.push_back(
            {file.path, sup.line, kRuleNolintJustify,
             "NOLINT suppression of " + f.rule +
                 " lacks a justification; append one after the rule list, "
                 "e.g. // NOLINTNEXTLINE(" + f.rule + "): <why this is "
                 "safe>"});
      }
    }
    if (!suppressed) kept.push_back(std::move(f));
  }
  // Policy sweep: EVERY suppression in the tree needs a written
  // justification, including ones aimed at clang-tidy rules that never
  // collide with a longdp-* finding. Blanket NOLINTs (no rule list) are
  // always violations.
  for (const Suppression& sup : sups) {
    if (sup.justified && !sup.blanket) continue;
    if (!unjustified_reported.insert(sup.line).second) continue;
    kept.push_back(
        {file.path, sup.line, kRuleNolintJustify,
         sup.blanket
             ? std::string("blanket NOLINT; name the suppressed rule(s) "
                           "and justify, e.g. // NOLINT(<rule>): <why>")
             : "NOLINT suppression lacks a justification; append one after "
               "the rule list, e.g. // NOLINTNEXTLINE(<rule>): <why this "
               "is safe>"});
  }
  return kept;
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

std::vector<Finding> RunRules(const LexedFile& file,
                              const ProjectContext& ctx,
                              const Options& options) {
  std::vector<Finding> findings;
  if (RuleEnabled(kRuleRawRng, options) &&
      !RuleExempt(kRuleRawRng, file.path, options)) {
    CheckRawRng(file, &findings);
  }
  if (RuleEnabled(kRuleNoiseViaDp, options) &&
      !RuleExempt(kRuleNoiseViaDp, file.path, options)) {
    CheckNoiseViaDp(file, &findings);
  }
  if (RuleEnabled(kRuleUnorderedIter, options) &&
      !RuleExempt(kRuleUnorderedIter, file.path, options)) {
    CheckUnorderedIteration(file, ctx, &findings);
  }
  if (RuleEnabled(kRuleStatusChecked, options) &&
      !RuleExempt(kRuleStatusChecked, file.path, options)) {
    CheckStatusDiscarded(file, ctx, &findings);
  }
  if (RuleEnabled(kRuleSubstream, options) &&
      !RuleExempt(kRuleSubstream, file.path, options)) {
    CheckSubstreamDiscipline(file, &findings);
  }
  if (RuleEnabled(kRuleSimdContained, options) &&
      !RuleExempt(kRuleSimdContained, file.path, options)) {
    CheckSimdContained(file, &findings);
  }
  return ApplySuppressions(file, std::move(findings));
}

void SortFindings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
}

bool HasSourceExtension(const std::filesystem::path& p) {
  static const std::set<std::string> kExts = {".h",   ".hh",  ".hpp",
                                              ".cc",  ".cpp", ".cxx"};
  return kExts.count(p.extension().string()) > 0;
}

bool Excluded(const std::string& path, const Options& options) {
  for (const auto& sub : options.excludes) {
    if (PathContains(path, sub)) return true;
  }
  return false;
}

}  // namespace

std::string Finding::ToString() const {
  std::ostringstream out;
  out << path << ":" << line << ": warning: " << message << " [" << rule
      << "]";
  return out.str();
}

const std::vector<std::string>& RuleNames() {
  static const std::vector<std::string> kRules = {
      kRuleRawRng, kRuleUnorderedIter, kRuleNoiseViaDp, kRuleStatusChecked,
      kRuleSubstream, kRuleSimdContained};
  return kRules;
}

bool IsKnownRule(const std::string& rule) {
  const std::vector<std::string>& rules = RuleNames();
  return rule == kRuleNolintJustify ||
         std::find(rules.begin(), rules.end(), rule) != rules.end();
}

std::vector<Finding> ScanSource(const std::string& path,
                                const std::string& content,
                                const Options& options) {
  LexedFile file = Lex(path, content);
  ProjectContext ctx;
  CollectDeclarations(file, &ctx);
  std::vector<Finding> findings = RunRules(file, ctx, options);
  SortFindings(&findings);
  return findings;
}

Result<std::vector<Finding>> ScanPaths(const std::vector<std::string>& paths,
                                       const Options& options) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    const fs::file_status st = fs::status(p, ec);
    if (ec || st.type() == fs::file_type::not_found) {
      return Status::IOError("no such file or directory: " + p);
    }
    if (fs::is_directory(st)) {
      for (fs::recursive_directory_iterator it(p, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file() && HasSourceExtension(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
      if (ec) {
        return Status::IOError("walking " + p + ": " + ec.message());
      }
    } else {
      files.push_back(fs::path(p).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<LexedFile> lexed;
  ProjectContext ctx;
  for (const std::string& f : files) {
    if (Excluded(f, options)) continue;
    std::ifstream in(f, std::ios::binary);
    if (!in) return Status::IOError("cannot open " + f);
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in.good() && !in.eof()) {
      return Status::IOError("error reading " + f);
    }
    lexed.push_back(Lex(f, buf.str()));
    CollectDeclarations(lexed.back(), &ctx);
  }

  std::vector<Finding> findings;
  for (const LexedFile& file : lexed) {
    std::vector<Finding> fs_file = RunRules(file, ctx, options);
    findings.insert(findings.end(),
                    std::make_move_iterator(fs_file.begin()),
                    std::make_move_iterator(fs_file.end()));
  }
  SortFindings(&findings);
  return findings;
}

}  // namespace lint
}  // namespace longdp
