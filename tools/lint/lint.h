// longdp-lint: a token-level static analyzer for project invariants.
//
// The library scans C++ sources and enforces the determinism / privacy
// invariants that the runtime suites (goldens, statistical acceptance, TSan)
// can only catch after the fact:
//
//   longdp-no-raw-rng            No std::rand/srand, std::random_device,
//                                std::mt19937-family engines, or argless
//                                time()/clock() seeding outside
//                                src/util/rng.{h,cc}. Every draw must flow
//                                through util::Rng so releases replay
//                                bit-identically.
//   longdp-no-unordered-iteration
//                                No range-for or begin()/cbegin() iteration
//                                over std::unordered_{map,set} variables.
//                                Iteration order is stdlib-dependent and
//                                poisons cross-platform determinism the
//                                moment it feeds a release log or CSV.
//   longdp-noise-via-dp          No direct std::normal_distribution /
//                                std::geometric_distribution outside
//                                src/dp/ — privacy noise must come from a
//                                dp:: mechanism charged to the accountant.
//   longdp-status-checked        A statement that calls a Status-returning
//                                function and discards the result. Backs up
//                                the [[nodiscard]] attribute at lint time
//                                (and, unlike the compiler, refuses the
//                                (void)-cast escape hatch).
//   longdp-substream-discipline  No direct construction of util::Rng (the
//                                mutable xoshiro engine) outside
//                                src/util/rng.* and src/util/substream.*.
//                                Noise and sampling must come from keyed
//                                util::SubstreamRng substreams so every
//                                draw has a (seed, purpose, shard, round,
//                                draw) address and releases are
//                                shard-count-invariant. Consuming an engine
//                                via `Rng*` / `Rng&` stays legal.
//   longdp-simd-contained        No raw vendor intrinsics (_mm*/__m*
//                                identifiers, *intrin.h headers, arm_neon)
//                                outside src/util/simd/. Hot loops must call
//                                the runtime-dispatched kernels in
//                                util/simd/simd.h, which keep a bit-identical
//                                scalar fallback (LONGDP_FORCE_SCALAR) so
//                                goldens never depend on the host ISA.
//
// Suppressions follow the clang-tidy spelling but are stricter: a
// `// NOLINTNEXTLINE(longdp-<rule>)` (or trailing `// NOLINT(longdp-<rule>)`)
// must name the rule AND carry a trailing justification after the closing
// paren, e.g.
//
//   // NOLINTNEXTLINE(longdp-no-unordered-iteration): order folded by sum
//
// A suppression without a justification does not suppress and additionally
// raises longdp-nolint-needs-justification. The justification policy covers
// EVERY suppression in the tree, not just longdp-* rules: an unjustified
// `// NOLINT(<clang-tidy-rule>)` and a blanket `// NOLINT` with no rule
// list are both flagged, so the clang-tidy wall in CI cannot be waved
// through silently.

#ifndef LONGDP_TOOLS_LINT_LINT_H_
#define LONGDP_TOOLS_LINT_LINT_H_

#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace longdp {
namespace lint {

/// One diagnostic. `line` is 1-based.
struct Finding {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;

  /// "path:line: warning: message [rule]" — the clang-diagnostic shape
  /// editors and CI annotations already know how to parse.
  std::string ToString() const;
};

struct Options {
  /// Rules to run; empty means all. longdp-nolint-needs-justification is a
  /// meta rule and always active.
  std::vector<std::string> rules;

  /// Files whose forward-slash path contains any of these substrings are
  /// skipped entirely (e.g. "tests/lint_fixtures").
  std::vector<std::string> excludes;

  /// Extra per-rule allowlist entries: a file whose path contains `.second`
  /// is exempt from rule `.first`. Built-in exemptions (src/util/rng.* for
  /// longdp-no-raw-rng, src/dp/ for longdp-noise-via-dp) are always active.
  std::vector<std::pair<std::string, std::string>> allow;
};

/// Names of the six source rules (not including the NOLINT meta rule).
const std::vector<std::string>& RuleNames();
bool IsKnownRule(const std::string& rule);

/// Scans one in-memory file. The project context (Status-returning function
/// names, unordered-container variable names) is derived from this file
/// alone — the entry point unit tests and fixtures use.
std::vector<Finding> ScanSource(const std::string& path,
                                const std::string& content,
                                const Options& options);

/// Scans files and directories (recursively; *.h *.hh *.hpp *.cc *.cpp
/// *.cxx). Runs a first pass over every file to collect project-wide
/// declarations, then applies the rules, so a Status-returning function
/// declared in a header is recognized at call sites in other files.
/// Findings come back sorted by path, line, rule. Fails with IOError when a
/// path does not exist or a file cannot be read.
Result<std::vector<Finding>> ScanPaths(const std::vector<std::string>& paths,
                                       const Options& options);

}  // namespace lint
}  // namespace longdp

#endif  // LONGDP_TOOLS_LINT_LINT_H_
