// Fixture-based and inline tests for the longdp-lint analyzer. The fixture
// files under tests/lint_fixtures are data (never compiled); each documents
// the findings it must produce. Inline ScanSource cases pin the
// statement-context analysis of longdp-status-checked and the exemption /
// suppression machinery.

#include "lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace longdp {
namespace lint {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(LONGDP_LINT_FIXTURE_DIR) + "/" + name;
}

std::vector<Finding> ScanFixture(const std::string& name,
                                 const Options& options = {}) {
  auto result = ScanPaths({FixturePath(name)}, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? result.value() : std::vector<Finding>{};
}

std::vector<std::string> RulesOf(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  std::vector<std::string> rules = RulesOf(findings);
  return static_cast<int>(std::count(rules.begin(), rules.end(), rule));
}

// ---------------------------------------------------------------------------
// Fixture files
// ---------------------------------------------------------------------------

TEST(LintFixtureTest, PassFixturesAreClean) {
  for (const char* name :
       {"pass_clean.cc", "pass_unordered_lookup.cc", "pass_status_checked.cc",
        "pass_nolint_justified.cc", "pass_substream_discipline.cc",
        "pass_simd_nolint_justified.cc"}) {
    std::vector<Finding> findings = ScanFixture(name);
    EXPECT_TRUE(findings.empty())
        << name << ": " << (findings.empty() ? "" : findings[0].ToString());
  }
}

TEST(LintFixtureTest, RawRngFixtureCatchesEveryPrimitive) {
  std::vector<Finding> findings = ScanFixture("fail_raw_rng.cc");
  ASSERT_EQ(findings.size(), 5u);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "longdp-no-raw-rng") << f.ToString();
  }
  // mt19937 + random_device on one line, srand + time(nullptr) on the next,
  // std::rand on the return.
  std::vector<int> lines;
  for (const Finding& f : findings) lines.push_back(f.line);
  EXPECT_EQ(lines, (std::vector<int>{8, 8, 9, 9, 10}));
}

TEST(LintFixtureTest, UnorderedIterationFixture) {
  std::vector<Finding> findings = ScanFixture("fail_unordered_iteration.cc");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(CountRule(findings, "longdp-no-unordered-iteration"), 2);
}

TEST(LintFixtureTest, NoiseOutsideDpFixture) {
  std::vector<Finding> findings = ScanFixture("fail_noise_outside_dp.cc");
  EXPECT_EQ(CountRule(findings, "longdp-noise-via-dp"), 2);
  // The std::mt19937 parameter also trips the raw-RNG rule.
  EXPECT_EQ(CountRule(findings, "longdp-no-raw-rng"), 1);
  EXPECT_EQ(findings.size(), 3u);
}

TEST(LintFixtureTest, StatusDiscardFixture) {
  std::vector<Finding> findings = ScanFixture("fail_status_discarded.cc");
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(CountRule(findings, "longdp-status-checked"), 3);
}

TEST(LintFixtureTest, SubstreamDisciplineFixtureFlagsEveryConstruction) {
  std::vector<Finding> findings = ScanFixture("fail_substream_discipline.cc");
  ASSERT_EQ(findings.size(), 3u);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "longdp-substream-discipline") << f.ToString();
  }
  std::vector<int> lines;
  for (const Finding& f : findings) lines.push_back(f.line);
  EXPECT_EQ(lines, (std::vector<int>{9, 10, 11}));
}

TEST(LintFixtureTest, SimdContainedFixtureFlagsHeaderAndIntrinsics) {
  std::vector<Finding> findings = ScanFixture("fail_simd_outside_util.cc");
  ASSERT_EQ(findings.size(), 4u);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "longdp-simd-contained") << f.ToString();
  }
  // Header include, __m256i + _mm256_set1_epi64x, _mm256_extract_epi64.
  std::vector<int> lines;
  for (const Finding& f : findings) lines.push_back(f.line);
  EXPECT_EQ(lines, (std::vector<int>{4, 9, 9, 10}));
}

TEST(LintFixtureTest, MissingJustificationKeepsFindingAndAddsMetaFinding) {
  std::vector<Finding> findings =
      ScanFixture("fail_nolint_missing_justification.cc");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(CountRule(findings, "longdp-no-unordered-iteration"), 1);
  EXPECT_EQ(CountRule(findings, "longdp-nolint-needs-justification"), 1);
}

TEST(LintFixtureTest, SuppressionNamingWrongRuleDoesNotApply) {
  std::vector<Finding> findings = ScanFixture("fail_nolint_wrong_rule.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "longdp-no-unordered-iteration");
}

TEST(LintFixtureTest, BlanketAndForeignRuleSuppressionsAreFlagged) {
  std::vector<Finding> findings = ScanFixture("fail_nolint_blanket.cc");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(CountRule(findings, "longdp-nolint-needs-justification"), 2);
  // The blanket NOLINT rides on the atoi line; the unjustified clang-tidy
  // suppression is the NOLINTNEXTLINE comment itself.
  std::vector<int> lines{findings[0].line, findings[1].line};
  std::sort(lines.begin(), lines.end());
  EXPECT_EQ(lines, (std::vector<int>{8, 9}));
}

TEST(LintFixtureTest, DirectoryScanVisitsAllFixtures) {
  auto result = ScanPaths({std::string(LONGDP_LINT_FIXTURE_DIR)}, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // 5 raw-rng + 2 unordered + (2 noise + 1 raw-rng) + 3 status +
  // (1 unordered + 1 meta) + 1 unordered + 2 nolint-policy +
  // 3 substream + 4 simd = 25; pass_* files contribute none.
  EXPECT_EQ(result.value().size(), 25u);
  for (const Finding& f : result.value()) {
    EXPECT_EQ(f.path.find("pass_"), std::string::npos) << f.ToString();
  }
}

TEST(LintFixtureTest, ExcludeSkipsFiles) {
  Options options;
  options.excludes = {"fail_"};
  auto result = ScanPaths({std::string(LONGDP_LINT_FIXTURE_DIR)}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST(LintFixtureTest, RulesFilterRestrictsFindings) {
  Options options;
  options.rules = {"longdp-noise-via-dp"};
  std::vector<Finding> findings =
      ScanFixture("fail_noise_outside_dp.cc", options);
  EXPECT_EQ(findings.size(), 2u);
  EXPECT_EQ(CountRule(findings, "longdp-noise-via-dp"), 2);
}

TEST(LintFixtureTest, AllowExemptsOneRuleByPath) {
  Options options;
  options.allow = {{"longdp-no-unordered-iteration", "lint_fixtures"}};
  std::vector<Finding> findings =
      ScanFixture("fail_unordered_iteration.cc", options);
  EXPECT_TRUE(findings.empty());
}

TEST(LintFixtureTest, MissingPathIsIOError) {
  auto result = ScanPaths({"/nonexistent/lint/path"}, {});
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

// ---------------------------------------------------------------------------
// Inline sources: statement-context analysis and exemptions
// ---------------------------------------------------------------------------

TEST(LintScanSourceTest, ConsumedStatusCallsAreNotFlagged) {
  const std::string src = R"cc(
    Status Save(int id);
    Status Caller() {
      Status st = Save(1);
      if (!st.ok()) return st;
      if (Save(2).ok()) { }
      LONGDP_RETURN_NOT_OK(Save(3));
      return Save(4);
    }
  )cc";
  EXPECT_TRUE(ScanSource("a.cc", src, {}).empty());
}

TEST(LintScanSourceTest, DiscardContextsAreFlagged) {
  const std::string src = R"cc(
    Status Save(int id);
    void Caller(bool b) {
      Save(1);
      if (b) Save(2);
      else Save(3);
      (void)Save(4);
    }
  )cc";
  std::vector<Finding> findings = ScanSource("a.cc", src, {});
  EXPECT_EQ(findings.size(), 4u);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "longdp-status-checked");
  }
}

TEST(LintScanSourceTest, MethodChainOnTemporaryIsFlagged) {
  const std::string src = R"cc(
    struct Bank { Status SaveState(int out); };
    Bank MakeBank();
    void Caller() {
      MakeBank().SaveState(1);
    }
  )cc";
  std::vector<Finding> findings = ScanSource("a.cc", src, {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "longdp-status-checked");
}

TEST(LintScanSourceTest, CrossFileStatusDeclarationsAreResolved) {
  // Save is declared in the header and discarded in the .cc: the project
  // pass must connect them.
  const std::string dir = ::testing::TempDir() + "/lint_crossfile";
  std::filesystem::create_directories(dir);
  {
    std::ofstream h(dir + "/api.h");
    h << "Status Save(int id);\n";
    std::ofstream cc(dir + "/use.cc");
    cc << "#include \"api.h\"\nvoid F() { Save(1); }\n";
  }
  auto result = ScanPaths({dir}, {});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value()[0].rule, "longdp-status-checked");
  EXPECT_NE(result.value()[0].path.find("use.cc"), std::string::npos);
}

TEST(LintScanSourceTest, BuiltinExemptionsApply) {
  EXPECT_TRUE(
      ScanSource("src/util/rng.cc", "std::mt19937 gen;", {}).empty());
  EXPECT_TRUE(ScanSource("src/dp/mechanisms.cc",
                         "std::normal_distribution<double> d(0.0, 1.0);", {})
                  .empty());
  // The same content elsewhere is a finding.
  EXPECT_EQ(ScanSource("src/core/x.cc", "std::mt19937 gen;", {}).size(), 1u);
  EXPECT_EQ(ScanSource("src/core/x.cc",
                       "std::normal_distribution<double> d(0.0, 1.0);", {})
                .size(),
            1u);
}

TEST(LintScanSourceTest, SubstreamDisciplineContexts) {
  // Construction of the raw engine is flagged, named or temporary.
  EXPECT_EQ(ScanSource("src/core/x.cc", "util::Rng rng(1);", {}).size(), 1u);
  EXPECT_EQ(
      ScanSource("src/core/x.cc", "auto v = util::Rng(1).Next();", {}).size(),
      1u);
  // Consuming an engine through a pointer/reference, naming the type in a
  // template argument, or constructing a keyed substream is fine.
  EXPECT_TRUE(
      ScanSource("src/core/x.cc", "void F(util::Rng* r, util::Rng& s);", {})
          .empty());
  EXPECT_TRUE(
      ScanSource("src/core/x.cc", "std::unique_ptr<util::Rng> p;", {})
          .empty());
  EXPECT_TRUE(ScanSource("src/core/x.cc",
                         "util::SubstreamRng s(1, util::substream::kGeneric);",
                         {})
                  .empty());
  // The engine and substream sources may mint engines.
  EXPECT_TRUE(ScanSource("src/util/rng.h", "Rng Fork();", {}).empty());
  EXPECT_TRUE(
      ScanSource("src/util/substream.cc", "Rng base(SubclassTag{});", {})
          .empty());
}

TEST(LintScanSourceTest, SimdContainedExemptsOnlyTheSimdLayer) {
  const std::string src = "__m256i v = _mm256_add_epi64(a, b);";
  EXPECT_TRUE(ScanSource("src/util/simd/simd_avx2.cc", src, {}).empty());
  EXPECT_EQ(ScanSource("src/core/x.cc", src, {}).size(), 2u);
  // The intrinsic umbrella header is flagged wherever it is included.
  EXPECT_EQ(
      ScanSource("src/stream/y.cc", "#include <immintrin.h>\n", {}).size(),
      1u);
}

TEST(LintScanSourceTest, CommentsAndStringsDoNotTrigger) {
  const std::string src = R"cc(
    // std::mt19937 in a comment is fine
    /* so is normal_distribution here */
    const char* kDoc = "uses std::random_device and rand()";
  )cc";
  EXPECT_TRUE(ScanSource("a.cc", src, {}).empty());
}

TEST(LintScanSourceTest, UnorderedAliasAndMemberIterationCaught) {
  const std::string src = R"cc(
    using WeightIndex = std::unordered_map<int, double>;
    struct S {
      WeightIndex weights_;
      double Sum() const {
        double total = 0.0;
        for (const auto& [k, v] : weights_) total += v;
        return total;
      }
    };
  )cc";
  std::vector<Finding> findings = ScanSource("a.cc", src, {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "longdp-no-unordered-iteration");
}

TEST(LintScanSourceTest, TimeSeedingOnlyFlagsArglessForms) {
  EXPECT_EQ(ScanSource("a.cc", "long t = time(nullptr);", {}).size(), 1u);
  EXPECT_EQ(ScanSource("a.cc", "long t = std::time(0);", {}).size(), 1u);
  // steady_clock timing is the bench harness's job, not entropy.
  EXPECT_TRUE(
      ScanSource("a.cc", "auto t0 = std::chrono::steady_clock::now();", {})
          .empty());
  // A time(explicit_ptr) call reads a clock into a variable; not seeding.
  EXPECT_TRUE(ScanSource("a.cc", "time_t v; time(&v);", {}).empty());
}

TEST(LintScanSourceTest, NolintPolicyCoversForeignRulesButNotProse) {
  // Unjustified suppression of a clang-tidy rule: flagged even though the
  // rule never collides with a longdp-* finding.
  EXPECT_EQ(
      ScanSource("a.cc", "// NOLINTNEXTLINE(bugprone-foo)\nint x = 1;\n", {})
          .size(),
      1u);
  // Justified foreign-rule suppression: clean.
  EXPECT_TRUE(
      ScanSource("a.cc",
                 "// NOLINTNEXTLINE(bugprone-foo): init order is fixed\n"
                 "int x = 1;\n",
                 {})
          .empty());
  // Blanket, even with a reason after a colon: must name the rule.
  EXPECT_EQ(
      ScanSource("a.cc", "int y = 2;  // NOLINT: trust me\n", {}).size(),
      1u);
  // Prose mentioning NOLINT mid-sentence is not a directive.
  EXPECT_TRUE(
      ScanSource("a.cc", "// how NOLINT markers work\n", {}).empty());
}

TEST(LintScanSourceTest, FindingToStringIsClangShaped) {
  std::vector<Finding> findings =
      ScanSource("src/x.cc", "std::mt19937 gen;", {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].ToString().find("src/x.cc:1: warning: "), 0u);
  EXPECT_NE(findings[0].ToString().find("[longdp-no-raw-rng]"),
            std::string::npos);
}

}  // namespace
}  // namespace lint
}  // namespace longdp
