// longdp_lint: enforce the project's determinism / privacy invariants at
// lint time. Token-level, dependency-free, and fast enough to run on every
// local ctest invocation (the tools_lint_selfcheck test does exactly that).
//
// Usage:
//   longdp_lint PATH... [--rules=r1,r2] [--exclude=sub1,sub2]
//               [--allow=rule:pathsub,...] [--quiet] [--list_rules]
//
// PATH arguments are files or directories (scanned recursively for
// *.h *.hh *.hpp *.cc *.cpp *.cxx). --exclude skips files whose path
// contains a substring; --allow exempts files from one named rule.
// Exit codes mirror tools/bench_diff: 0 = clean, 1 = findings,
// 2 = usage or IO error.

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/flags.h"
#include "lint/lint.h"

namespace longdp {
namespace {

std::vector<std::string> SplitCommas(const std::string& raw) {
  std::vector<std::string> out;
  std::istringstream in(raw);
  std::string tok;
  while (std::getline(in, tok, ',')) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

int RunLint(const harness::Flags& flags) {
  if (flags.Has("list_rules")) {
    for (const std::string& rule : lint::RuleNames()) {
      std::cout << rule << "\n";
    }
    return 0;
  }
  if (flags.positional().empty()) {
    std::cerr << "usage: longdp_lint PATH... [--rules=r1,r2]"
                 " [--exclude=sub1,sub2] [--allow=rule:pathsub,...]"
                 " [--quiet] [--list_rules]\n";
    return 2;
  }

  lint::Options options;
  options.rules = SplitCommas(flags.GetString("rules", ""));
  for (const std::string& rule : options.rules) {
    if (!lint::IsKnownRule(rule)) {
      std::cerr << "longdp_lint: unknown rule '" << rule << "'; see"
                   " --list_rules\n";
      return 2;
    }
  }
  options.excludes = SplitCommas(flags.GetString("exclude", ""));
  for (const std::string& entry : SplitCommas(flags.GetString("allow", ""))) {
    const size_t sep = entry.find(':');
    if (sep == std::string::npos || sep == 0 || sep + 1 == entry.size()) {
      std::cerr << "longdp_lint: bad --allow entry '" << entry
                << "' (want rule:path_substring)\n";
      return 2;
    }
    const std::string rule = entry.substr(0, sep);
    if (!lint::IsKnownRule(rule)) {
      std::cerr << "longdp_lint: unknown rule in --allow: '" << rule
                << "'\n";
      return 2;
    }
    options.allow.emplace_back(rule, entry.substr(sep + 1));
  }

  auto result = lint::ScanPaths(flags.positional(), options);
  if (!result.ok()) {
    std::cerr << "longdp_lint: " << result.status().ToString() << "\n";
    return 2;
  }
  const std::vector<lint::Finding>& findings = result.value();
  for (const lint::Finding& f : findings) {
    std::cout << f.ToString() << "\n";
  }
  if (!flags.Has("quiet")) {
    if (findings.empty()) {
      std::cout << "longdp_lint: no findings\n";
    } else {
      std::cout << "longdp_lint: " << findings.size() << " finding(s)\n";
    }
  }
  return findings.empty() ? 0 : 1;
}

}  // namespace
}  // namespace longdp

int main(int argc, char** argv) {
  auto flags = longdp::harness::Flags::Parse(argc, argv);
  return longdp::RunLint(flags);
}
